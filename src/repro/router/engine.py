"""The router engine: config-driven BGP speaker + kernel sync.

The key operational property reproduced from §5: :meth:`Router.reconfigure`
applies a new configuration *without* resetting BGP sessions whose identity
is unchanged — filters are swapped in place, protocols are added/removed
incrementally, and the engine reports what it kept versus reset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.bgp.policy import RouteMap
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import Channel
from repro.netsim.stack import NetworkStack
from repro.router.config import BgpProtocol, RouterConfig
from repro.router.kernel import KernelSync
from repro.sim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryHub


@dataclass
class ReconfigureReport:
    """Outcome of a configuration push."""

    sessions_kept: list[str] = field(default_factory=list)
    sessions_reset: list[str] = field(default_factory=list)
    protocols_added: list[str] = field(default_factory=list)
    protocols_removed: list[str] = field(default_factory=list)
    filters_updated: list[str] = field(default_factory=list)

    @property
    def disruptive(self) -> bool:
        return bool(self.sessions_reset or self.protocols_removed)


class Router:
    """A BIRD-like router instance."""

    def __init__(
        self,
        scheduler: Scheduler,
        config: RouterConfig,
        stack: Optional[NetworkStack] = None,
        name: str = "router",
        telemetry: Optional["TelemetryHub"] = None,
    ) -> None:
        self.scheduler = scheduler
        self.config = config
        self.stack = stack
        self.name = name
        self.telemetry = telemetry
        self.speaker = BgpSpeaker(
            scheduler,
            SpeakerConfig(
                asn=config.asn,
                router_id=config.router_id,
                hold_time=config.hold_time,
                mrai=config.mrai,
            ),
            telemetry=telemetry,
        )
        self.kernel_syncs: dict[str, KernelSync] = {}
        self.reconfigurations = 0
        for kernel_config in config.kernel_protocols.values():
            self._add_kernel(kernel_config.name)

    def _add_kernel(self, name: str) -> None:
        if self.stack is None:
            return
        kernel_config = self.config.kernel_protocols[name]
        sync = KernelSync(kernel_config, self.stack)
        self.kernel_syncs[name] = sync
        self.speaker.on_best_change.append(sync.best_changed)

    # ------------------------------------------------------------------

    def neighbor_config_for(self, protocol: BgpProtocol) -> NeighborConfig:
        """Translate a config protocol into a live speaker neighbor config."""
        import_policy = (
            RouteMap.reject_all() if protocol.reject_import
            else self.config.filter_map(protocol.import_filter)
        )
        export_policy = (
            RouteMap.reject_all() if protocol.reject_export
            else self.config.filter_map(protocol.export_filter)
        )
        return NeighborConfig(
            name=protocol.name,
            peer_asn=protocol.peer_asn,
            peer_address=protocol.neighbor_address,
            local_address=protocol.local_address,
            addpath=protocol.addpath,
            is_ibgp=protocol.is_ibgp,
            transparent=protocol.transparent,
            next_hop_self=protocol.next_hop_self,
            import_policy=import_policy,
            export_policy=export_policy,
            max_prefixes=protocol.max_prefixes,
        )

    def connect_protocol(self, name: str, channel: Channel) -> None:
        """Wire a configured BGP protocol to a transport channel."""
        protocol = self.config.bgp_protocols.get(name)
        if protocol is None:
            raise KeyError(f"no bgp protocol {name!r} configured")
        self.speaker.attach_neighbor(self.neighbor_config_for(protocol), channel)

    def disconnect_protocol(self, name: str) -> None:
        self.speaker.remove_neighbor(name)

    # ------------------------------------------------------------------

    def reconfigure(self, new_config: RouterConfig) -> ReconfigureReport:
        """Apply ``new_config`` with minimal disruption.

        * BGP protocols whose session identity is unchanged keep their
          session; import/export filters are replaced live.
        * Protocols with changed identity are reset (shutdown; the
          orchestrator re-connects them).
        * Removed protocols are shut down; added ones await connection.
        """
        report = ReconfigureReport()
        old = self.config
        if (
            new_config.asn != old.asn
            or new_config.router_id != old.router_id
        ):
            raise ValueError(
                "changing the router identity requires a new router instance"
            )
        self.reconfigurations += 1

        old_names = set(old.bgp_protocols)
        new_names = set(new_config.bgp_protocols)
        for name in sorted(old_names - new_names):
            self.speaker.remove_neighbor(name)
            report.protocols_removed.append(name)
        for name in sorted(new_names - old_names):
            report.protocols_added.append(name)
        for name in sorted(old_names & new_names):
            old_protocol = old.bgp_protocols[name]
            new_protocol = new_config.bgp_protocols[name]
            neighbor = self.speaker.neighbors.get(name)
            if neighbor is None:
                continue  # configured but never connected
            if (
                old_protocol.session_identity()
                != new_protocol.session_identity()
            ):
                self.speaker.remove_neighbor(name)
                report.sessions_reset.append(name)
                continue
            # Hot-swap policies on the live neighbor.
            updated = self.neighbor_config_for_with(new_config, new_protocol)
            neighbor.config.import_policy = updated.import_policy
            neighbor.config.export_policy = updated.export_policy
            neighbor.config.transparent = updated.transparent
            neighbor.config.next_hop_self = updated.next_hop_self
            neighbor.config.max_prefixes = updated.max_prefixes
            report.sessions_kept.append(name)
            if (
                old_protocol.import_filter != new_protocol.import_filter
                or old_protocol.export_filter != new_protocol.export_filter
            ):
                report.filters_updated.append(name)
        # Filter *content* may change even when references stay the same.
        for name in new_config.filters:
            old_filter = old.filters.get(name)
            new_filter = new_config.filters[name]
            if old_filter is None or old_filter.route_map is not new_filter.route_map:
                for protocol_name in sorted(old_names & new_names):
                    protocol = new_config.bgp_protocols[protocol_name]
                    if name in (protocol.import_filter, protocol.export_filter):
                        if protocol_name not in report.filters_updated:
                            report.filters_updated.append(protocol_name)
        self.config = new_config
        # Rebind kernel protocols (cheap; sessions unaffected).
        for kernel_name in new_config.kernel_protocols:
            if kernel_name not in self.kernel_syncs:
                self._add_kernel(kernel_name)
        self._record_reconfigure(report)
        return report

    def _record_reconfigure(self, report: ReconfigureReport) -> None:
        tele = self.telemetry
        if tele is None:
            return
        registry = tele.registry
        for metric, help_text, amount in (
            ("router_reconfigurations", "Configuration pushes applied", 1),
            ("router_sessions_kept",
             "Sessions preserved across reconfiguration",
             len(report.sessions_kept)),
            ("router_sessions_reset",
             "Sessions reset by reconfiguration",
             len(report.sessions_reset)),
            ("router_filters_updated",
             "Filters hot-swapped on live sessions",
             len(report.filters_updated)),
        ):
            if amount:
                registry.counter(
                    metric, help_text, labels=("router",)
                ).labels(self.name).inc(amount)
        tele.tracer.event(
            "router.reconfigure", router=self.name,
            kept=len(report.sessions_kept),
            reset=len(report.sessions_reset),
            disruptive=report.disruptive,
        )

    def neighbor_config_for_with(
        self, config: RouterConfig, protocol: BgpProtocol
    ) -> NeighborConfig:
        saved = self.config
        self.config = config
        try:
            return self.neighbor_config_for(protocol)
        finally:
            self.config = saved

    # ------------------------------------------------------------------

    def originate(self, route) -> None:
        self.speaker.originate(route)

    def withdraw(self, prefix) -> None:
        self.speaker.withdraw(prefix)

    def best_route(self, prefix):
        return self.speaker.best_route(prefix)

    def routes(self, prefix):
        """All candidate routes for a prefix (ADD-PATH visibility)."""
        return [entry.route for entry in self.speaker.loc_rib.candidates(prefix)]
