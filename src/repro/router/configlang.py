"""Parser for the BIRD-style router configuration language.

PEERING's intent-based tooling (§5) renders templates into router config
files (10,000+ lines at large PoPs); the router consumes that text. The
grammar is a compact subset of BIRD's:

::

    router id 10.0.0.1;
    local as 47065;
    hold time 90;
    mrai 0;

    filter experiment_in {
        if net ~ 184.164.224.0/23+ then accept;
        if community ~ (47065,100) then accept;
        if aspath ~ 3356 then reject;
        if aspath.len > 32 then reject;
        if unknown_attrs then reject;
        set localpref 200;
        add community (47065,1);
        reject;
    }

    protocol kernel main4 {
        table 254;
        export all;
    }

    protocol bgp upstream0 {
        neighbor 10.0.0.2 as 3356;
        local address 10.0.0.1;
        add paths on;
        transparent on;
        ibgp off;
        next hop self on;
        import filter experiment_in;
        export all;
        max prefixes 1000000;
    }

Filter bodies compile to :class:`~repro.bgp.policy.RouteMap` chains; every
``if … then …`` becomes one policy rule, bare actions apply unconditionally
(result CONTINUE), and a trailing bare ``accept``/``reject`` sets the
default disposition.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.bgp.policy import (
    Match,
    PolicyAction,
    PolicyResult,
    PolicyRule,
    PrefixMatch,
    RouteMap,
)
from repro.bgp.attributes import Community, LargeCommunity
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.router.config import (
    BgpProtocol,
    FilterDef,
    KernelProtocol,
    RouterConfig,
)


class ConfigSyntaxError(ValueError):
    """Raised on malformed configuration text."""


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<punct>[{}();,])
  | (?P<word>[^\s{}();,]+)
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[str]:
    tokens = []
    for match in _TOKEN_RE.finditer(text):
        if match.lastgroup in ("comment", "space"):
            continue
        tokens.append(match.group())
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[str]) -> None:
        self._tokens = tokens
        self._pos = 0

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)

    def peek(self) -> Optional[str]:
        if self.exhausted:
            return None
        return self._tokens[self._pos]

    def next(self) -> str:
        if self.exhausted:
            raise ConfigSyntaxError("unexpected end of configuration")
        token = self._tokens[self._pos]
        self._pos += 1
        return token

    def expect(self, expected: str) -> None:
        token = self.next()
        if token != expected:
            raise ConfigSyntaxError(
                f"expected {expected!r}, found {token!r}"
            )

    def expect_int(self) -> int:
        token = self.next()
        try:
            return int(token)
        except ValueError as exc:
            raise ConfigSyntaxError(f"expected integer, found {token!r}") from exc

    def expect_onoff(self) -> bool:
        token = self.next()
        if token not in ("on", "off"):
            raise ConfigSyntaxError(f"expected on/off, found {token!r}")
        return token == "on"


def parse_config(text: str) -> RouterConfig:
    """Parse configuration text into a :class:`RouterConfig`."""
    stream = _TokenStream(_tokenize(text))
    router_id: Optional[IPv4Address] = None
    asn: Optional[int] = None
    hold_time = 90
    mrai = 0.0
    filters: dict[str, FilterDef] = {}
    kernels: dict[str, KernelProtocol] = {}
    bgps: dict[str, BgpProtocol] = {}

    while not stream.exhausted:
        keyword = stream.next()
        if keyword == "router":
            stream.expect("id")
            router_id = IPv4Address.parse(stream.next())
            stream.expect(";")
        elif keyword == "local":
            stream.expect("as")
            asn = stream.expect_int()
            stream.expect(";")
        elif keyword == "hold":
            stream.expect("time")
            hold_time = stream.expect_int()
            stream.expect(";")
        elif keyword == "mrai":
            mrai = float(stream.next())
            stream.expect(";")
        elif keyword == "filter":
            definition = _parse_filter(stream)
            filters[definition.name] = definition
        elif keyword == "protocol":
            kind = stream.next()
            if kind == "kernel":
                protocol = _parse_kernel(stream)
                kernels[protocol.name] = protocol
            elif kind == "bgp":
                protocol = _parse_bgp(stream)
                bgps[protocol.name] = protocol
            else:
                raise ConfigSyntaxError(f"unknown protocol kind {kind!r}")
        else:
            raise ConfigSyntaxError(f"unknown top-level keyword {keyword!r}")

    if router_id is None:
        raise ConfigSyntaxError("missing 'router id'")
    if asn is None:
        raise ConfigSyntaxError("missing 'local as'")
    return RouterConfig(
        router_id=router_id,
        asn=asn,
        hold_time=hold_time,
        mrai=mrai,
        filters=filters,
        kernel_protocols=kernels,
        bgp_protocols=bgps,
    )


# ---------------------------------------------------------------------------
# Filters
# ---------------------------------------------------------------------------


def _parse_filter(stream: _TokenStream) -> FilterDef:
    name = stream.next()
    stream.expect("{")
    rules: list[PolicyRule] = []
    default = PolicyResult.ACCEPT
    default_seen = False
    while stream.peek() != "}":
        if stream.peek() is None:
            raise ConfigSyntaxError(f"unterminated filter {name!r}")
        token = stream.next()
        if token == "if":
            match = _parse_condition(stream)
            stream.expect("then")
            action, result = _parse_then(stream)
            rules.append(PolicyRule(match=match, action=action, result=result))
        elif token in ("accept", "reject"):
            stream.expect(";")
            default = (
                PolicyResult.ACCEPT if token == "accept" else PolicyResult.REJECT
            )
            default_seen = True
            break  # statements after a bare accept/reject are unreachable
        else:
            action = _parse_action_statement(token, stream)
            rules.append(
                PolicyRule(
                    match=Match(), action=action, result=PolicyResult.CONTINUE
                )
            )
    while stream.peek() != "}":
        stream.next()  # skip unreachable statements
    stream.expect("}")
    if not default_seen:
        default = PolicyResult.REJECT  # BIRD filters reject by default
    return FilterDef(
        name=name, route_map=RouteMap(rules=rules, default=default, name=name)
    )


def _parse_condition(stream: _TokenStream) -> Match:
    subject = stream.next()
    if subject == "net":
        stream.expect("~")
        return Match(prefixes=(_parse_prefix_pattern(stream.next()),))
    if subject == "community":
        stream.expect("~")
        return Match(any_community_of=(_parse_community(stream),))
    if subject == "large_community":
        stream.expect("~")
        lc = _parse_large_community(stream)
        return Match(
            custom=lambda route, lc=lc: lc in route.attributes.large_communities
        )
    if subject == "aspath":
        stream.expect("~")
        return Match(as_path_contains=stream.expect_int())
    if subject == "aspath.len":
        stream.expect(">")
        limit = stream.expect_int()
        return Match(
            custom=lambda route, n=limit: route.as_path.length > n
        )
    if subject == "origin_as":
        stream.expect("=")
        asn = stream.expect_int()
        return Match(origin_as_in=frozenset({asn}))
    if subject == "first_as":
        stream.expect("=")
        asn = stream.expect_int()
        return Match(first_as_in=frozenset({asn}))
    if subject == "unknown_attrs":
        return Match(has_unknown_attributes=True)
    raise ConfigSyntaxError(f"unknown condition subject {subject!r}")


def _parse_prefix_pattern(token: str) -> PrefixMatch:
    if token.endswith("+"):
        prefix = IPv4Prefix.parse(token[:-1])
        return PrefixMatch(prefix=prefix, ge=prefix.length, le=32)
    if token.endswith("-"):
        prefix = IPv4Prefix.parse(token[:-1])
        return PrefixMatch(prefix=prefix, ge=prefix.length, le=prefix.length)
    prefix = IPv4Prefix.parse(token)
    return PrefixMatch(prefix=prefix)


def _parse_community(stream: _TokenStream) -> Community:
    stream.expect("(")
    asn = stream.expect_int()
    stream.expect(",")
    value = stream.expect_int()
    stream.expect(")")
    return Community(asn, value)


def _parse_large_community(stream: _TokenStream) -> LargeCommunity:
    stream.expect("(")
    global_admin = stream.expect_int()
    stream.expect(",")
    local1 = stream.expect_int()
    stream.expect(",")
    local2 = stream.expect_int()
    stream.expect(")")
    return LargeCommunity(global_admin, local1, local2)


def _parse_then(stream: _TokenStream) -> tuple[PolicyAction, PolicyResult]:
    token = stream.next()
    if token == "accept":
        stream.expect(";")
        return PolicyAction(), PolicyResult.ACCEPT
    if token == "reject":
        stream.expect(";")
        return PolicyAction(), PolicyResult.REJECT
    if token == "{":
        actions: list[PolicyAction] = []
        result = PolicyResult.CONTINUE
        while stream.peek() != "}":
            inner = stream.next()
            if inner in ("accept", "reject"):
                stream.expect(";")
                result = (
                    PolicyResult.ACCEPT
                    if inner == "accept"
                    else PolicyResult.REJECT
                )
                break
            actions.append(_parse_action_statement(inner, stream))
        while stream.peek() != "}":
            stream.next()
        stream.expect("}")
        return _merge_actions(actions), result
    # Single inline action: "if … then set localpref 200;"
    action = _parse_action_statement(token, stream)
    return action, PolicyResult.CONTINUE


def _merge_actions(actions: list[PolicyAction]) -> PolicyAction:
    if not actions:
        return PolicyAction()
    if len(actions) == 1:
        return actions[0]

    def apply_all(route, actions=tuple(actions)):
        for action in actions:
            route = action.apply(route)
        return route

    return PolicyAction(custom=apply_all)


def _parse_action_statement(token: str, stream: _TokenStream) -> PolicyAction:
    if token == "set":
        target = stream.next()
        if target == "localpref":
            value = stream.expect_int()
            stream.expect(";")
            return PolicyAction(set_local_pref=value)
        if target == "med":
            value = stream.expect_int()
            stream.expect(";")
            return PolicyAction(set_med=value)
        raise ConfigSyntaxError(f"unknown set target {target!r}")
    if token == "prepend":
        asn = stream.expect_int()
        count = 1
        if stream.peek() == "times":
            stream.next()
            count = stream.expect_int()
        stream.expect(";")
        return PolicyAction(prepend_asn=asn, prepend_count=count)
    if token == "add":
        stream.expect("community")
        community = _parse_community(stream)
        stream.expect(";")
        return PolicyAction(add_communities=(community,))
    if token == "remove":
        stream.expect("community")
        community = _parse_community(stream)
        stream.expect(";")
        return PolicyAction(remove_communities=(community,))
    if token == "strip":
        target = stream.next()
        stream.expect(";")
        if target == "communities":
            return PolicyAction(clear_communities=True)
        if target == "unknown":
            return PolicyAction(strip_unknown_attributes=True)
        raise ConfigSyntaxError(f"unknown strip target {target!r}")
    raise ConfigSyntaxError(f"unknown filter statement {token!r}")


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


def _parse_kernel(stream: _TokenStream) -> KernelProtocol:
    name = stream.next()
    stream.expect("{")
    table = 254
    export = True
    while stream.peek() != "}":
        token = stream.next()
        if token == "table":
            table = stream.expect_int()
            stream.expect(";")
        elif token == "export":
            mode = stream.next()
            stream.expect(";")
            export = mode != "none"
        else:
            raise ConfigSyntaxError(f"unknown kernel option {token!r}")
    stream.expect("}")
    return KernelProtocol(name=name, table=table, export=export)


def _parse_bgp(stream: _TokenStream) -> BgpProtocol:
    name = stream.next()
    stream.expect("{")
    protocol = BgpProtocol(name=name, peer_asn=None)
    while stream.peek() != "}":
        token = stream.next()
        if token == "neighbor":
            protocol.neighbor_address = IPv4Address.parse(stream.next())
            stream.expect("as")
            asn_token = stream.next()
            protocol.peer_asn = None if asn_token == "any" else int(asn_token)
            stream.expect(";")
        elif token == "local":
            stream.expect("address")
            protocol.local_address = IPv4Address.parse(stream.next())
            stream.expect(";")
        elif token == "add":
            stream.expect("paths")
            protocol.addpath = stream.expect_onoff()
            stream.expect(";")
        elif token == "transparent":
            protocol.transparent = stream.expect_onoff()
            stream.expect(";")
        elif token == "ibgp":
            protocol.is_ibgp = stream.expect_onoff()
            stream.expect(";")
        elif token == "next":
            stream.expect("hop")
            stream.expect("self")
            protocol.next_hop_self = stream.expect_onoff()
            stream.expect(";")
        elif token == "import":
            mode = stream.next()
            if mode == "all":
                protocol.import_filter = None
                protocol.reject_import = False
            elif mode == "none":
                protocol.reject_import = True
            elif mode == "filter":
                protocol.import_filter = stream.next()
            else:
                raise ConfigSyntaxError(f"unknown import mode {mode!r}")
            stream.expect(";")
        elif token == "export":
            mode = stream.next()
            if mode == "all":
                protocol.export_filter = None
                protocol.reject_export = False
            elif mode == "none":
                protocol.reject_export = True
            elif mode == "filter":
                protocol.export_filter = stream.next()
            else:
                raise ConfigSyntaxError(f"unknown export mode {mode!r}")
            stream.expect(";")
        elif token == "max":
            stream.expect("prefixes")
            protocol.max_prefixes = stream.expect_int()
            stream.expect(";")
        else:
            raise ConfigSyntaxError(f"unknown bgp option {token!r}")
    stream.expect("}")
    if protocol.peer_asn is None and protocol.neighbor_address == IPv4Address(0):
        raise ConfigSyntaxError(f"bgp protocol {name!r} missing neighbor")
    return protocol
