"""FleetController: launch, RPC, kill/restart, teardown — real processes."""

import pytest

from repro.fleet.compiler import compile_world
from repro.fleet.controller import (
    FleetController,
    fleet_down,
    fleet_status,
    live_fleet_process_count,
)
from repro.fleet.spec import demo_world_spec


@pytest.fixture
def fleet(tmp_path):
    return compile_world(
        demo_world_spec(pops=2, port_base=24600), tmp_path)


def test_up_hello_status_down(fleet):
    controller = FleetController(fleet)
    try:
        controller.up()
        assert live_fleet_process_count() >= 2
        for name in fleet.pop_names():
            hello = controller.clients[name].call("hello")
            assert hello["pop"] == name
            assert hello["digest"] == fleet.digest
        status = controller.status()
        assert all(row["running"] for row in status.values())
        # The stateless helpers see the same fleet via state.json.
        stateless = fleet_status(fleet)
        assert all(row["running"] for row in stateless.values())
    finally:
        controller.down()
    assert live_fleet_process_count() == 0
    assert not (fleet.directory / "state.json").exists()


def test_kill_and_restart_pop(fleet):
    controller = FleetController(fleet)
    try:
        controller.up()
        victim = fleet.pop_names()[0]
        pid = controller.processes[victim].pid
        controller.kill_pop(victim)
        assert controller.processes[victim].poll() is not None
        client = controller.restart_pop(victim)
        assert controller.processes[victim].pid != pid
        assert client.call("hello")["digest"] == fleet.digest
    finally:
        controller.down()


def test_wait_ready_rejects_wrong_digest(fleet, tmp_path):
    other = compile_world(
        demo_world_spec(pops=2, name="other", port_base=24600),
        tmp_path / "other")
    assert other.digest != fleet.digest
    controller = FleetController(fleet)
    impostor = FleetController(other)
    try:
        controller.launch_pop(fleet.pop_names()[0])
        with pytest.raises(RuntimeError, match="digest"):
            # Same control port (same port_base), different world.
            impostor.wait_ready(other.pop_names()[0])
    finally:
        impostor.close()
        controller.down()


def test_stateless_down_stops_an_orphaned_fleet(fleet):
    controller = FleetController(fleet)
    controller.up()
    # Drop the controller's sockets but leave the processes running —
    # the crashed-operator case the stateless CLI path exists for.
    controller.close()
    assert live_fleet_process_count() == 2
    outcome = fleet_down(fleet)
    assert set(outcome.values()) <= {"stopped", "terminated", "killed"}
    assert live_fleet_process_count() == 0


def test_federation_receives_events(fleet):
    import time

    controller = FleetController(fleet)
    try:
        controller.up()
        deadline = time.monotonic() + 10
        # The two members' backbone peering alone produces peer-up BMP
        # events on the federation feed; pump until they arrive and the
        # central station has seen peers from both PoPs.
        while True:
            controller.poller.pump(0.05)
            peers = controller.station.peer_names()
            pops_seen = {name.split("/", 1)[0] for name in peers}
            if (controller.federation_events > 0
                    and pops_seen >= set(fleet.pop_names())):
                break
            if time.monotonic() > deadline:
                pytest.fail(
                    f"federation feed incomplete: {sorted(peers)}")
    finally:
        controller.down()
