"""FleetPop runtime: artifact-built PoPs agree with pinned allocations."""

import pytest

from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.fleet.compiler import compile_world
from repro.fleet.runtime import LOCAL_INVARIANTS, build_fleet_pop
from repro.fleet.spec import demo_world_spec
from repro.netsim.addr import IPv4Address
from repro.sim.scheduler import Scheduler


@pytest.fixture
def fleet(tmp_path):
    return compile_world(demo_world_spec(pops=3, port_base=23000), tmp_path)


def _settle(scheduler):
    while scheduler.run_until(scheduler.now):
        pass


def test_build_pins_gids_and_addresses(fleet):
    scheduler = Scheduler()
    pop = build_fleet_pop(scheduler, fleet.artifacts["pop1"])
    try:
        artifact = fleet.artifacts["pop1"]
        info = artifact["upstreams"]["up1"]
        ours, theirs = connect_pair(scheduler, rtt=0.0)
        pop.attach_upstream_channel("up1", ours)
        speaker = BgpSpeaker(scheduler, SpeakerConfig(
            asn=info["asn"],
            router_id=IPv4Address.parse(info["address"]), hold_time=0))
        speaker.attach_neighbor(NeighborConfig(
            name="pop1/up1", peer_asn=None,
            local_address=IPv4Address.parse(info["address"])), theirs)
        _settle(scheduler)
        assert speaker.neighbors["pop1/up1"].established
        assert pop.summary()["upstreams"]["up1"] is True
        # The gid pin is the whole point: the in-process registry must
        # have allocated exactly what the compiler promised.
        neighbor = pop.node.upstreams["up1"]
        assert neighbor.virtual.global_id == info["gid"]
    finally:
        pop.close()


def test_gid_pin_conflict_is_rejected(fleet):
    scheduler = Scheduler()
    artifact = dict(fleet.artifacts["pop0"])
    # Poison the pinned gid map: pop0/up0 claims gid 2, which the
    # world's gid table hands to pop1/up1.
    artifact["upstreams"] = {
        "up0": dict(artifact["upstreams"]["up0"], gid=2)
    }
    with pytest.raises((ValueError, RuntimeError, KeyError)):
        pop = build_fleet_pop(scheduler, artifact)
        ours, _theirs = connect_pair(scheduler, rtt=0.0)
        pop.attach_upstream_channel("up0", ours)


def test_local_invariants_clean_on_idle_pop(fleet):
    scheduler = Scheduler()
    pop = build_fleet_pop(scheduler, fleet.artifacts["pop0"])
    try:
        reports = pop.local_invariants()
        assert set(reports) == set(LOCAL_INVARIANTS)
        assert all(report["ok"] for report in reports.values())
    finally:
        pop.close()


def test_structural_snapshot_is_stable_when_idle(fleet):
    scheduler = Scheduler()
    pop = build_fleet_pop(scheduler, fleet.artifacts["pop2"])
    try:
        assert pop.structural_snapshot() == pop.structural_snapshot()
    finally:
        pop.close()
