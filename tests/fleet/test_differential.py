"""The fleet proof obligation: in-process vs real processes, byte-equal.

The tier-1 leg runs a small world (2 PoPs) so the suite stays fast; the
CI ``fleet`` job runs the full 3-PoP differential with more updates.
"""

import pytest

from repro.fleet.differential import (
    FleetDifferentialHarness,
    run_fleet_differential,
)


def test_harness_rejects_single_pop_world():
    with pytest.raises(ValueError):
        FleetDifferentialHarness(pops=1)


def test_two_pop_fleet_is_byte_identical():
    report = run_fleet_differential(
        pops=2, updates=8, prefix_count=8, seed=0, port_base=24700)
    assert report.ok, report.format()
    assert report.mismatches == []
    assert report.federation_events > 0
    expected = {
        "addpath_completeness", "community_propagation",
        "kernel_consistency", "no_cross_experiment_leakage",
        "no_withdrawal_loss_under_shed", "vmac_bijectivity",
    }
    assert set(report.invariants) == expected
    assert set(report.reference_invariants) == expected


@pytest.mark.slow
def test_three_pop_fleet_is_byte_identical():
    report = run_fleet_differential(
        pops=3, updates=18, prefix_count=12, seed=0, port_base=24760)
    assert report.ok, report.format()
