"""fleet-pop-crash: SIGKILL mid-churn, restart from artifact, re-heal.

Tier-1 runs seeds 0 and 1 (two different victims); the CI ``fleet`` job
soaks seeds 0-2.
"""

import pytest

from repro.fleet.crash import run_fleet_pop_crash


@pytest.mark.parametrize("seed", [0, 1])
def test_crash_restart_converges_to_pre_fault_state(seed):
    result = run_fleet_pop_crash(
        seed=seed, port_base=24820 + seed * 40)
    assert result.ok, result.format()
    assert result.name == "fleet-pop-crash"
    assert result.invariants["prefix_state_restored"]
    assert result.details["diverged_keys"] == 0
    assert result.details["outage_updates"] > 0


@pytest.mark.slow
@pytest.mark.parametrize("seed", [2, 3, 4])
def test_crash_soak_other_victims(seed):
    result = run_fleet_pop_crash(
        seed=seed, port_base=25000 + seed * 40)
    assert result.ok, result.format()
