"""WorldSpec: canonical form, digest, derived allocations."""

import pytest

from repro.fleet.spec import (
    ExperimentSpec,
    PopSpec,
    UpstreamSpec,
    WorldSpec,
    demo_world_spec,
)


def test_canonical_json_round_trips():
    spec = demo_world_spec(pops=3)
    clone = WorldSpec.from_dict(spec.to_dict())
    assert clone.canonical_json() == spec.canonical_json()
    assert clone.digest == spec.digest


def test_digest_tracks_content():
    assert demo_world_spec(pops=2).digest != demo_world_spec(pops=3).digest
    assert (demo_world_spec(pops=3).digest
            == demo_world_spec(pops=3).digest)


def test_validation_rejects_duplicates_and_dangling_refs():
    with pytest.raises(ValueError):
        WorldSpec(name="w", pops=(
            PopSpec(name="a"), PopSpec(name="a"))).validate()
    with pytest.raises(ValueError):
        WorldSpec(name="w", pops=(PopSpec(name="a", upstreams=(
            UpstreamSpec(name="u", asn=1),
            UpstreamSpec(name="u", asn=2))),)).validate()
    with pytest.raises(ValueError):
        WorldSpec(name="w", pops=(PopSpec(name="a"),), experiments=(
            ExperimentSpec(name="e", prefix="10.0.0.0/24",
                           pops=("ghost",)),)).validate()
    with pytest.raises(ValueError):
        WorldSpec(name="w", pops=()).validate()


def test_global_ids_follow_spec_order():
    spec = demo_world_spec(pops=3)
    gids = spec.global_ids()
    assert [gid for _, _, gid in gids] == [1, 2, 3]
    assert gids[0][:2] == ("pop0", "up0")
    assert gids[2][:2] == ("pop2", "up2")


def test_port_map_is_collision_free_and_pinned():
    spec = demo_world_spec(pops=3, port_base=23000)
    ports = spec.port_map()
    assert ports["base"] == 23000
    seen = [ports["federation"]]
    for entry in ports["pops"].values():
        seen.append(entry["control"])
        if entry["backbone"] is not None:
            seen.append(entry["backbone"])
        seen += list(entry["upstreams"].values())
        seen += list(entry["experiments"].values())
    assert len(seen) == len(set(seen))
    assert all(23000 <= port < 24000 for port in seen)


def test_port_map_derives_base_from_digest():
    ports = demo_world_spec(pops=3).port_map()
    assert 21000 <= ports["base"] < 41000
    # Same world, same base; a different world lands elsewhere.
    assert demo_world_spec(pops=3).port_map()["base"] == ports["base"]
    assert demo_world_spec(pops=2).port_map()["base"] != ports["base"]
