"""Deterministic compilation: same spec, byte-identical artifacts.

The fleet differential depends on every process-visible allocation being
a pure function of the spec's canonical JSON — so compilation must be
byte-stable across runs *and* across ``PYTHONHASHSEED`` values (hash
randomization perturbs set/dict iteration order, the classic source of
accidental nondeterminism in emitted artifacts).
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.fleet.compiler import compile_world, load_fleet
from repro.fleet.spec import demo_world_spec


def _artifact_bytes(directory: Path) -> dict:
    return {
        path.name: path.read_bytes()
        for path in sorted(Path(directory).glob("*.json"))
    }


def test_recompilation_is_byte_identical(tmp_path):
    spec = demo_world_spec(pops=3, port_base=23000)
    compile_world(spec, tmp_path / "one")
    compile_world(spec, tmp_path / "two")
    first = _artifact_bytes(tmp_path / "one")
    second = _artifact_bytes(tmp_path / "two")
    assert first.keys() == {"world.json", "pop-pop0.json",
                            "pop-pop1.json", "pop-pop2.json"}
    assert first == second


def test_recompile_overwrites_stale_outputs(tmp_path):
    spec = demo_world_spec(pops=3, port_base=23000)
    compile_world(demo_world_spec(pops=2, port_base=23000), tmp_path)
    fleet = compile_world(spec, tmp_path)
    assert load_fleet(tmp_path).digest == fleet.digest == spec.digest


def test_port_map_stable_across_runs(tmp_path):
    spec = demo_world_spec(pops=3)
    one = compile_world(spec, tmp_path / "a").world["ports"]
    two = compile_world(spec, tmp_path / "b").world["ports"]
    assert one == two


_HASHSEED_SCRIPT = """\
import sys
from repro.fleet.compiler import compile_world
from repro.fleet.spec import demo_world_spec
fleet = compile_world(demo_world_spec(pops=3, port_base=23000), sys.argv[1])
print(fleet.digest)
"""


def test_artifacts_stable_under_hashseed_variation(tmp_path):
    """Compile the same spec in subprocesses with different
    PYTHONHASHSEED values; every emitted byte must match."""
    outputs = {}
    for seed in ("0", "1", "4242"):
        out_dir = tmp_path / f"seed-{seed}"
        env = dict(os.environ, PYTHONHASHSEED=seed)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", _HASHSEED_SCRIPT, str(out_dir)],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        outputs[seed] = (result.stdout, _artifact_bytes(out_dir))
    baseline = outputs["0"]
    for seed, produced in outputs.items():
        assert produced == baseline, f"PYTHONHASHSEED={seed} diverged"
