"""vBGP node tests: the Figure 2 control/data-plane delegation mechanisms.

These wire a PointOfPresence (which embeds a VbgpNode) to a plain BGP
speaker acting as the upstream neighbor, and a raw ADD-PATH session acting
as the experiment — no platform orchestration, so each mechanism is
observable in isolation.
"""

import pytest

from repro.bgp.attributes import local_route, originate
from repro.bgp.messages import UpdateMessage
from repro.bgp.session import BgpSession, SessionConfig
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.security.capabilities import ExperimentProfile
from repro.vbgp.allocator import GlobalNeighborRegistry
from repro.vbgp.communities import announce_to_neighbor, block_neighbor

EXP_PREFIX = IPv4Prefix.parse("184.164.224.0/24")
DEST = IPv4Prefix.parse("192.168.0.0/24")


@pytest.fixture
def pop(scheduler):
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="testpop", pop_id=0),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    pop.control_enforcer.register_experiment(
        ExperimentProfile(name="x1", asns=frozenset({47065}),
                          prefixes=(EXP_PREFIX,))
    )
    return pop


def add_neighbor(scheduler, pop, name, asn, announce=()):
    """A real BGP speaker as the PoP's neighbor, announcing prefixes."""
    port = pop.provision_neighbor(name, asn, kind="peer")
    speaker = BgpSpeaker(
        scheduler, SpeakerConfig(asn=asn, router_id=port.address)
    )
    speaker.attach_neighbor(
        NeighborConfig(name="to-peering", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    for prefix in announce:
        speaker.originate(local_route(prefix, next_hop=port.address))
    return speaker, port


class ExperimentEndpoint:
    """A raw ADD-PATH BGP endpoint standing in for an experiment."""

    def __init__(self, scheduler, pop, name="x1",
                 prefixes=(EXP_PREFIX,)):
        self.updates = []
        self.routes = {}
        ours, theirs = connect_pair(scheduler, rtt=0.01)
        tunnel_ip = IPv4Address.parse("100.125.0.2")
        from repro.netsim.addr import MacAddress

        self.tunnel_mac = MacAddress.parse("02:aa:00:00:00:02")
        pop.node.attach_experiment(
            name=name, asn=47065, prefixes=prefixes,
            tunnel_ip=tunnel_ip, tunnel_mac=self.tunnel_mac, channel=ours,
        )
        self.session = BgpSession(
            scheduler,
            SessionConfig(local_asn=47065,
                          local_id=tunnel_ip, peer_asn=47065,
                          addpath=True),
            theirs,
            on_update=self._on_update,
        )
        self.session.start()

    def _on_update(self, _session, update):
        self.updates.append(update)
        for prefix, path_id in update.withdrawn:
            self.routes.pop(path_id, None)
        for route in update.routes():
            self.routes[route.path_id] = route

    def announce(self, route):
        self.session.send_update(UpdateMessage.announce([route]))

    def withdraw(self, route):
        self.session.send_update(UpdateMessage.withdraw([route]))


def test_next_hop_rewritten_to_local_vip(scheduler, pop):
    """Figure 2a: announcements reach experiments with virtual next hops."""
    speaker, port = add_neighbor(scheduler, pop, "n1", 65010,
                                 announce=(DEST,))
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    assert len(experiment.routes) == 1
    route = next(iter(experiment.routes.values()))
    virtual = pop.node.upstreams["n1"].virtual
    assert route.next_hop == virtual.local_ip
    assert str(route.next_hop).startswith("127.65.")
    assert route.path_id is not None


def test_two_neighbors_two_paths(scheduler, pop):
    add_neighbor(scheduler, pop, "n1", 65010, announce=(DEST,))
    add_neighbor(scheduler, pop, "n2", 65020, announce=(DEST,))
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    assert len(experiment.routes) == 2
    next_hops = {str(r.next_hop) for r in experiment.routes.values()}
    assert len(next_hops) == 2
    paths = {r.as_path.origin_as for r in experiment.routes.values()}
    assert paths == {65010, 65020}


def test_withdraw_fans_out(scheduler, pop):
    speaker, _port = add_neighbor(scheduler, pop, "n1", 65010,
                                  announce=(DEST,))
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    assert len(experiment.routes) == 1
    speaker.withdraw(DEST)
    scheduler.run_for(5)
    assert len(experiment.routes) == 0


def test_late_experiment_gets_full_table(scheduler, pop):
    add_neighbor(scheduler, pop, "n1", 65010,
                 announce=(DEST, IPv4Prefix.parse("192.168.1.0/24")))
    scheduler.run_for(5)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    assert len(experiment.routes) == 2


def test_per_neighbor_kernel_tables(scheduler, pop):
    add_neighbor(scheduler, pop, "n1", 65010, announce=(DEST,))
    add_neighbor(scheduler, pop, "n2", 65020, announce=(DEST,))
    scheduler.run_for(5)
    n1 = pop.node.upstreams["n1"].virtual
    n2 = pop.node.upstreams["n2"].virtual
    t1 = pop.stack.tables[n1.table_id]
    t2 = pop.stack.tables[n2.table_id]
    assert len(t1) == 1 and len(t2) == 1
    r1 = t1.lookup(DEST.address_at(1)).value
    r2 = t2.lookup(DEST.address_at(1)).value
    assert r1.next_hop != r2.next_hop  # each points at its own neighbor


def test_proxy_arp_and_rules_provisioned(scheduler, pop):
    add_neighbor(scheduler, pop, "n1", 65010)
    virtual = pop.node.upstreams["n1"].virtual
    assert pop.stack.proxy_arp["exp0"][virtual.local_ip] == virtual.mac
    assert virtual.mac in pop.stack.interfaces["exp0"].extra_macs
    assert any(
        rule.match_dmac == virtual.mac and rule.table == virtual.table_id
        for rule in pop.stack.rules
    )


def test_experiment_announcement_exported_to_all(scheduler, pop):
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    n2, _p2 = add_neighbor(scheduler, pop, "n2", 65020)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    experiment.announce(
        local_route(EXP_PREFIX, next_hop=IPv4Address.parse("100.125.0.2"))
    )
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is not None
    assert n2.best_route(EXP_PREFIX) is not None
    # Platform ASN prepended on export.
    assert n1.best_route(EXP_PREFIX).as_path.asns == (47065,)


def test_whitelist_community_limits_export(scheduler, pop):
    n1, p1 = add_neighbor(scheduler, pop, "n1", 65010)
    n2, _p2 = add_neighbor(scheduler, pop, "n2", 65020)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    gid1 = pop.node.upstreams["n1"].virtual.global_id
    experiment.announce(
        local_route(EXP_PREFIX, next_hop=IPv4Address.parse("100.125.0.2"))
        .add_communities(announce_to_neighbor(gid1))
    )
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is not None
    assert n2.best_route(EXP_PREFIX) is None
    # Control communities are stripped before export.
    assert n1.best_route(EXP_PREFIX).communities == frozenset()


def test_blacklist_community_excludes_neighbor(scheduler, pop):
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    n2, _p2 = add_neighbor(scheduler, pop, "n2", 65020)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    gid2 = pop.node.upstreams["n2"].virtual.global_id
    experiment.announce(
        local_route(EXP_PREFIX, next_hop=IPv4Address.parse("100.125.0.2"))
        .add_communities(block_neighbor(gid2))
    )
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is not None
    assert n2.best_route(EXP_PREFIX) is None


def test_different_announcements_per_neighbor(scheduler, pop):
    """§2.2.2's motivating case: prepended to n1, plain to n2 — via two
    ADD-PATH announcements with different communities."""
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    n2, _p2 = add_neighbor(scheduler, pop, "n2", 65020)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    gid1 = pop.node.upstreams["n1"].virtual.global_id
    gid2 = pop.node.upstreams["n2"].virtual.global_id
    tunnel_ip = IPv4Address.parse("100.125.0.2")
    prepended = (
        local_route(EXP_PREFIX, next_hop=tunnel_ip)
        .prepended(47065, 3)
        .add_communities(announce_to_neighbor(gid1))
        .with_path_id(1)
    )
    plain = (
        local_route(EXP_PREFIX, next_hop=tunnel_ip)
        .add_communities(announce_to_neighbor(gid2))
        .with_path_id(2)
    )
    experiment.announce(prepended)
    experiment.announce(plain)
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX).as_path.length == 4  # 3 prepends + 1
    assert n2.best_route(EXP_PREFIX).as_path.length == 1


def test_experiment_withdraw_reaches_neighbors(scheduler, pop):
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    route = local_route(EXP_PREFIX,
                        next_hop=IPv4Address.parse("100.125.0.2"))
    experiment.announce(route)
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is not None
    experiment.withdraw(route)
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is None


def test_hijack_blocked_by_enforcer(scheduler, pop):
    """Announcing address space outside the allocation never propagates."""
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    hijack = local_route(IPv4Prefix.parse("8.8.8.0/24"),
                         next_hop=IPv4Address.parse("100.125.0.2"))
    experiment.announce(hijack)
    scheduler.run_for(5)
    assert n1.best_route(IPv4Prefix.parse("8.8.8.0/24")) is None
    assert pop.control_enforcer.routes_rejected == 1


def test_enforcer_overload_fails_closed(scheduler, pop):
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    pop.control_enforcer.overloaded = True
    experiment.announce(
        local_route(EXP_PREFIX, next_hop=IPv4Address.parse("100.125.0.2"))
    )
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is None
    assert pop.node.counters["enforcer_failures"] == 1
    assert pop.node.counters["announcements_blocked"] == 1


def test_experiment_detach_withdraws_everything(scheduler, pop):
    n1, _p1 = add_neighbor(scheduler, pop, "n1", 65010)
    experiment = ExperimentEndpoint(scheduler, pop)
    scheduler.run_for(5)
    experiment.announce(
        local_route(EXP_PREFIX, next_hop=IPv4Address.parse("100.125.0.2"))
    )
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is not None
    experiment.session.shutdown()
    scheduler.run_for(5)
    assert n1.best_route(EXP_PREFIX) is None
    assert "x1" not in pop.node.experiments


def test_known_routes_and_fib_counts(scheduler, pop):
    add_neighbor(scheduler, pop, "n1", 65010,
                 announce=(DEST, IPv4Prefix.parse("192.168.1.0/24")))
    add_neighbor(scheduler, pop, "n2", 65020, announce=(DEST,))
    scheduler.run_for(5)
    assert len(pop.node.known_routes()) == 3
    assert pop.node.fib_entry_count() >= 3
