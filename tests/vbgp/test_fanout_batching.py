"""Fan-out batching must be functionally invisible.

With ``fanout_batch`` on, routes sharing one attribute set are coalesced
into multi-NLRI UPDATEs; experiments must see exactly the same routes
(prefixes, next hops, AS paths, stable path ids) as with per-route
messages — only the message count may drop.
"""

import pytest

from repro import perf
from repro.bgp.attributes import local_route
from repro.netsim.addr import IPv4Prefix
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.capabilities import ExperimentProfile
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry

from tests.vbgp.test_node import EXP_PREFIX, ExperimentEndpoint, add_neighbor

PREFIXES = tuple(IPv4Prefix.parse("70.0.0.0/8").subnets(24))[:64]


def _run_scenario(batch: bool):
    """Announce a table, then attach a late experiment (full-table fanout),
    then withdraw half; return what the experiment ended up with."""
    with perf.flags(fanout_batch=batch):
        scheduler = Scheduler()
        pop = PointOfPresence(
            scheduler,
            PopConfig(name="testpop", pop_id=0),
            platform_asn=47065,
            platform_asns=frozenset({47065}),
            registry=GlobalNeighborRegistry(),
            enforcer_state=EnforcerState(),
        )
        pop.control_enforcer.register_experiment(
            ExperimentProfile(name="x1", asns=frozenset({47065}),
                              prefixes=(EXP_PREFIX,))
        )
        speaker, port = add_neighbor(
            scheduler, pop, "n1", 65010, announce=PREFIXES
        )
        scheduler.run_for(5)
        experiment = ExperimentEndpoint(scheduler, pop)
        scheduler.run_for(5)
        for prefix in PREFIXES[::2]:
            speaker.withdraw(prefix)
        scheduler.run_for(5)
        routes = {
            (route.prefix, route.path_id): (
                route.next_hop, route.as_path.asns,
                tuple(sorted(map(str, route.communities))),
            )
            for route in experiment.routes.values()
        }
        return routes, len(experiment.updates)


def test_batching_is_functionally_invisible():
    batched_routes, batched_updates = _run_scenario(batch=True)
    plain_routes, plain_updates = _run_scenario(batch=False)
    assert batched_routes == plain_routes
    assert len(batched_routes) == len(PREFIXES) - len(PREFIXES[::2])
    # The whole point: fewer messages for the same state.
    assert batched_updates < plain_updates


@pytest.mark.parametrize("batch", [True, False])
def test_oversized_batches_are_chunked(batch):
    """A full-table fanout larger than one UPDATE's NLRI budget must be
    split, never raise message-too-large."""
    with perf.flags(fanout_batch=batch):
        scheduler = Scheduler()
        pop = PointOfPresence(
            scheduler,
            PopConfig(name="testpop", pop_id=0),
            platform_asn=47065,
            platform_asns=frozenset({47065}),
            registry=GlobalNeighborRegistry(),
            enforcer_state=EnforcerState(),
        )
        pop.control_enforcer.register_experiment(
            ExperimentProfile(name="x1", asns=frozenset({47065}),
                              prefixes=(EXP_PREFIX,))
        )
        many = tuple(IPv4Prefix.parse("80.0.0.0/8").subnets(24))[:700]
        speaker, port = add_neighbor(scheduler, pop, "n1", 65010)
        experiment = ExperimentEndpoint(scheduler, pop)
        scheduler.run_for(5)
        for prefix in many:
            speaker.originate(local_route(prefix, next_hop=port.address))
        scheduler.run_for(10)
        assert len(experiment.routes) == len(many)
        # Withdraw everything at once: 700 withdrawals > one message.
        for prefix in many:
            speaker.withdraw(prefix)
        scheduler.run_for(10)
        assert len(experiment.routes) == 0
