"""Virtual neighbor allocation tests."""

import pytest

from repro.netsim.addr import MacAddress
from repro.vbgp.allocator import (
    GlobalNeighborRegistry,
    LocalVipAllocator,
    global_neighbor_ip,
    global_neighbor_mac,
    neighbor_mac_global_id,
    neighbor_table_id,
)


def test_global_ip_deterministic():
    assert str(global_neighbor_ip(1)) == "127.127.0.1"
    assert str(global_neighbor_ip(257)) == "127.127.1.1"


def test_global_ip_range_checked():
    with pytest.raises(ValueError):
        global_neighbor_ip(0)
    with pytest.raises(ValueError):
        global_neighbor_ip(1 << 17)


def test_global_mac_roundtrip():
    for gid in (1, 255, 4096, 65535):
        mac = global_neighbor_mac(gid)
        assert neighbor_mac_global_id(mac) == gid
        assert mac.is_locally_administered
        assert not mac.is_multicast


def test_foreign_mac_not_decoded():
    assert neighbor_mac_global_id(MacAddress.parse("aa:bb:cc:00:00:01")) is None
    assert neighbor_mac_global_id(MacAddress.parse("02:7f:00:00:00:00")) is None


def test_table_id_layout():
    assert neighbor_table_id(1) == 1001
    assert neighbor_table_id(500) == 1500


def test_registry_assigns_sequential_ids():
    registry = GlobalNeighborRegistry()
    first = registry.register("amsterdam", "as3356")
    second = registry.register("amsterdam", "as174")
    assert (first, second) == (1, 2)
    assert registry.register("amsterdam", "as3356") == first  # idempotent
    assert registry.lookup("amsterdam", "as174") == second
    assert registry.owner(second) == ("amsterdam", "as174")
    assert len(registry) == 2


def test_registry_distinct_per_pop():
    registry = GlobalNeighborRegistry()
    a = registry.register("amsterdam", "as3356")
    b = registry.register("seattle", "as3356")
    assert a != b


def test_local_vip_allocator_stable():
    allocator = LocalVipAllocator()
    vip5 = allocator.vip_for(5)
    vip9 = allocator.vip_for(9)
    assert allocator.vip_for(5) == vip5
    assert vip5 != vip9
    assert allocator.gid_for(vip9) == 9
    assert allocator.gid_for(vip5) == 5


def test_virtual_neighbor_bundle():
    allocator = LocalVipAllocator()
    virtual = allocator.virtual_neighbor(7)
    assert virtual.global_id == 7
    assert str(virtual.global_ip) == "127.127.0.7"
    assert virtual.table_id == 1007
    assert neighbor_mac_global_id(virtual.mac) == 7
    assert str(virtual.local_ip).startswith("127.65.")
