"""vBGP control-community scheme tests."""

from repro.bgp.attributes import Community, originate
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.vbgp.communities import (
    announce_to_neighbor,
    announce_to_pop,
    block_neighbor,
    is_control,
    select_targets,
    strip_control,
)

NEIGHBORS = [(1, 0), (2, 0), (3, 1), (4, 1)]  # (gid, pop)


def route(*communities):
    return originate(IPv4Prefix.parse("184.164.224.0/24"), 47065,
                     IPv4Address(1), communities=communities)


def test_default_announces_everywhere():
    assert select_targets(route(), NEIGHBORS) == {1, 2, 3, 4}


def test_whitelist_single_neighbor():
    selected = select_targets(route(announce_to_neighbor(2)), NEIGHBORS)
    assert selected == {2}


def test_whitelist_union():
    selected = select_targets(
        route(announce_to_neighbor(1), announce_to_neighbor(3)), NEIGHBORS
    )
    assert selected == {1, 3}


def test_blacklist_excludes():
    selected = select_targets(route(block_neighbor(4)), NEIGHBORS)
    assert selected == {1, 2, 3}


def test_blacklist_beats_whitelist():
    selected = select_targets(
        route(announce_to_neighbor(2), block_neighbor(2)), NEIGHBORS
    )
    assert selected == set()


def test_pop_whitelist():
    selected = select_targets(route(announce_to_pop(1)), NEIGHBORS)
    assert selected == {3, 4}


def test_pop_whitelist_with_blacklist():
    selected = select_targets(
        route(announce_to_pop(1), block_neighbor(3)), NEIGHBORS
    )
    assert selected == {4}


def test_is_control():
    assert is_control(announce_to_neighbor(1))
    assert is_control(block_neighbor(1))
    assert not is_control(Community(3356, 100))


def test_strip_control_keeps_free_form():
    free = Community(3356, 100)
    stripped = strip_control(route(announce_to_neighbor(1), free))
    assert stripped.communities == {free}


def test_strip_control_noop_without_control():
    original = route(Community(3356, 100))
    assert strip_control(original) is original


def test_per_neighbor_and_pop_combined():
    """A whitelist can mix a specific neighbor with a whole PoP."""
    selected = select_targets(
        route(announce_to_neighbor(1), announce_to_pop(1)), NEIGHBORS
    )
    assert selected == {1, 3, 4}
