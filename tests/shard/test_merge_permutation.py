"""Merge output is permutation-invariant to worker completion order.

Satellite 4 (property leg): real backends complete shards in whatever
order the scheduler/OS picks, so the engine's correctness rests on the
``MergeKey`` sort alone.  The Hypothesis property builds one op stream,
scatters it across workers in a shuffled completion order, and asserts
the merged effect stream is always the canonical one.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard import FanoutOp, MergeKey, MergeLayer, ShardStats


class _RecorderSession:
    """Established session stub that records what the merge sends."""

    def __init__(self, log, name):
        self.log = log
        self.name = name
        self.established = True
        self.addpath_active = False

    def send_update(self, update):
        self.log.append(("send", self.name, update))

    def send_wire(self, frame):
        self.log.append(("wire", self.name, frame))


class _RecorderStack:
    def __init__(self, log):
        self.log = log

    def add_route(self, route, table_id=None):
        self.log.append(("add", table_id, route))

    def remove_route(self, prefix, table_id=None):
        self.log.append(("remove", table_id, prefix))
        return True


class _RecorderNode:
    def __init__(self):
        self.log = []
        self.stack = _RecorderStack(self.log)
        from collections import Counter

        self.counters = Counter()


@st.composite
def _op_streams(draw):
    """A batch of ops with distinct MergeKeys plus a completion order."""
    shard_count = draw(st.integers(min_value=1, max_value=8))
    item_count = draw(st.integers(min_value=1, max_value=24))
    ops = []
    for seq in range(item_count):
        sim_time = float(draw(st.integers(min_value=0, max_value=3)))
        shard = draw(st.integers(min_value=0, max_value=shard_count - 1))
        emits = draw(st.integers(min_value=1, max_value=3))
        for emit in range(emits):
            kind = draw(st.sampled_from(
                ["send_wire", "add_route", "remove_route"]
            ))
            ops.append((kind, MergeKey(sim_time, seq, shard, emit)))
    order = draw(st.permutations(range(len(ops))))
    return shard_count, ops, order


@given(_op_streams())
@settings(max_examples=60, deadline=None)
def test_merge_is_permutation_invariant(stream):
    shard_count, op_specs, order = stream

    def materialise(node, session):
        ops = []
        for index, (kind, key) in enumerate(op_specs):
            if kind == "send_wire":
                ops.append(FanoutOp(
                    key=key, kind="send_wire",
                    payload=f"frame-{index}".encode(),
                    target=session, counter="updates_to_experiments",
                ))
            elif kind == "add_route":
                ops.append(FanoutOp(
                    key=key, kind="add_route", payload=f"route-{index}",
                    table_id=key.shard_id, counter="routes_installed",
                ))
            else:
                ops.append(FanoutOp(
                    key=key, kind="remove_route", payload=f"pfx-{index}",
                    table_id=key.shard_id, counter="routes_removed",
                ))
        return ops

    # Canonical: ops applied in MergeKey order, as one worker would.
    canonical_node = _RecorderNode()
    canonical_session = _RecorderSession(canonical_node.log, "s")
    canonical_ops = sorted(
        materialise(canonical_node, canonical_session),
        key=lambda op: op.key,
    )
    MergeLayer(canonical_node, ShardStats()).apply(canonical_ops)

    # Shuffled: the same ops arrive in an arbitrary completion order
    # (what a real backend produces), sorted by the engine's flush.
    shuffled_node = _RecorderNode()
    shuffled_session = _RecorderSession(shuffled_node.log, "s")
    shuffled_ops = materialise(shuffled_node, shuffled_session)
    shuffled_ops = [shuffled_ops[i] for i in order]
    shuffled_ops.sort(key=lambda op: op.key)
    MergeLayer(shuffled_node, ShardStats()).apply(shuffled_ops)

    assert shuffled_node.log == canonical_node.log
    assert shuffled_node.counters == canonical_node.counters
