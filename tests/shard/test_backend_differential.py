"""Differential proof: real backends are byte-identical to the sync
reference (ISSUE 9 acceptance criterion, small-scale tier-1 leg).

The CI ``parallel-backend`` job runs the full matrix (backend × shards
× churn/fulltable at CI scale); these tests keep a fast always-on
version in tier-1 so a byte-divergence regression is caught locally.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.conformance.differential import BACKENDS, DifferentialHarness
from repro.parallel import live_worker_count


@pytest.fixture(autouse=True)
def _restore_perf_flags():
    saved = perf.FLAGS
    yield
    perf.FLAGS = saved
    perf.clear_caches()


def test_backends_constant_covers_flag_values():
    assert BACKENDS == ("model", "async", "mp")


def test_async_backend_byte_identical_on_churn():
    harness = DifferentialHarness(update_count=250, prefix_count=250)
    report = harness.run_backends(backends=("async",), counts=(1, 2, 4))
    assert report.mode == "backend"
    assert report.ok, report.format()
    assert report.combinations == 4  # model/1 reference + 3 async runs


@pytest.mark.timeout(300)
def test_mp_backend_byte_identical_on_churn():
    harness = DifferentialHarness(update_count=200, prefix_count=200)
    report = harness.run_backends(backends=("mp",), counts=(2, 4))
    assert report.ok, report.format()
    assert live_worker_count() == 0  # every scenario closed its pool


def test_backends_byte_identical_on_fulltable():
    harness = DifferentialHarness(
        update_count=100, prefix_count=400, workload="fulltable"
    )
    report = harness.run_backends(backends=("async",), counts=(4,))
    assert report.workload == "fulltable"
    assert report.ok, report.format()


def test_prefix_partition_holds_structural_contract():
    """The prefix partition may repack UPDATEs (like fanout_batch), so
    backends are held to the structural + change-stream contract."""
    harness = DifferentialHarness(update_count=150, prefix_count=150)
    report = harness.run_backends(
        backends=("async",), counts=(4,), partition="prefix"
    )
    assert report.ok, report.format()
