"""Real shard backends behind the engine seam (DESIGN.md §6j).

Engine-level mechanics of the ``shard_backend`` knob: job collection,
dispatch, the ``send_wire`` merge path, lifecycle (close/kill reap every
worker), and telemetry.  Byte-identity against the sync reference is
proven separately by ``test_backend_differential.py``.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.bgp.attributes import local_route
from repro.chaos import build_chaos_world
from repro.netsim.addr import IPv4Prefix
from repro.parallel import (
    AsyncShardBackend,
    MpShardBackend,
    live_worker_count,
    make_backend,
)


@pytest.fixture(autouse=True)
def _restore_perf_flags():
    saved = perf.FLAGS
    yield
    perf.FLAGS = saved
    perf.clear_caches()


def _backend_world(backend, shards=4, seed=0, with_telemetry=False):
    world = build_chaos_world(seed=seed, with_telemetry=with_telemetry)
    perf.set_flags(shards=shards, shard_backend=backend)
    node = world.platform.pops["west"].node
    engine = node._shard_engine_if_enabled()
    assert engine is not None and engine.backend_name == backend
    return world, node, engine


def _churn(world, count=6, base=120):
    handle = world.neighbors["transit-west"]
    prefixes = [
        IPv4Prefix.parse(f"10.45.{base + index}.0/24")
        for index in range(count)
    ]
    for prefix in prefixes:
        handle.speaker.originate(
            local_route(prefix, next_hop=handle.port.address)
        )
    world.scheduler.run_for(5)
    for prefix in prefixes:
        handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5)


# -- factory --------------------------------------------------------------

def test_make_backend_names():
    assert make_backend("model", 4) is None
    backend = make_backend("async", 4)
    assert isinstance(backend, AsyncShardBackend)
    backend.close()
    backend = make_backend("mp", 2)
    assert isinstance(backend, MpShardBackend)
    backend.close()
    with pytest.raises(ValueError):
        make_backend("threads", 4)


# -- async backend --------------------------------------------------------

def test_async_backend_dispatches_and_applies():
    world, node, engine = _backend_world("async")
    sent_before = node.counters["updates_to_experiments"]
    _churn(world)
    assert engine.stats.dispatches >= 1
    assert engine.stats.jobs_dispatched >= 1
    assert node.counters["updates_to_experiments"] > sent_before
    # Every job was consumed: no stranded send_job ops, nothing pending.
    assert engine.buffered_ops == 0
    assert engine.pending == 0
    node.close_shard_engine()


def test_async_backend_engages_at_one_shard():
    """backend != model forces the engine even at shards=1; the model
    backend at shards=1 stays the direct (engine-less) path."""
    world, node, engine = _backend_world("async", shards=1)
    assert engine.shard_count == 1
    node.close_shard_engine()
    perf.set_flags(shards=1, shard_backend="model")
    assert node._shard_engine_if_enabled() is None


def test_backend_change_rebuilds_and_closes_engine():
    world, node, engine = _backend_world("async")
    perf.set_flags(shards=4, shard_backend="mp")
    rebuilt = node._shard_engine_if_enabled()
    assert rebuilt is not engine
    assert rebuilt.backend_name == "mp"
    # The replaced async engine was closed; close the mp one too.
    node.close_shard_engine()
    assert live_worker_count() == 0


# -- mp backend -----------------------------------------------------------

@pytest.mark.timeout(120)
def test_mp_backend_real_workers_encode_and_close_reaps():
    world, node, engine = _backend_world("mp", shards=2)
    sent_before = node.counters["updates_to_experiments"]
    _churn(world, count=4, base=140)
    assert engine.stats.dispatches >= 1
    assert node.counters["updates_to_experiments"] > sent_before
    backend = engine._backend
    assert backend.live_workers() >= 1  # lazily spawned on dispatch
    node.close_shard_engine()
    assert backend.live_workers() == 0
    assert live_worker_count() == 0


@pytest.mark.timeout(120)
def test_mp_kill_with_inflight_work_reaps_worker():
    """Satellite 3: kill() on a backend with in-flight work must
    drain/join the OS worker — no orphaned processes."""
    world, node, engine = _backend_world("mp", shards=2)
    handle = world.neighbors["transit-west"]
    gid = node.upstreams[handle.name].virtual.global_id
    victim = engine.shard_for_neighbor(gid)
    # Force the victim's worker to exist, then kill with queued work.
    prefix = IPv4Prefix.parse("10.46.0.0/24")
    handle.speaker.originate(
        local_route(prefix, next_hop=handle.port.address)
    )
    world.scheduler.run_for(5)
    backend = engine._backend
    assert backend.live_workers() >= 1
    engine.kill(victim)
    handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5)
    # The victim's OS process was terminated and joined at kill time.
    worker_entry = backend._workers[victim]
    assert worker_entry is None or not worker_entry.process.is_alive()
    assert engine.pending >= 1  # the withdraw backlogged on the inbox
    replayed = engine.resurrect(victim)
    assert replayed >= 1
    assert engine.pending == 0
    node.close_shard_engine()
    assert live_worker_count() == 0


@pytest.mark.timeout(120)
def test_mp_backend_shutdown_all_is_leakproof():
    from repro.parallel import shutdown_all

    backend = MpShardBackend(2)
    from repro.parallel.protocol import EncodeJob  # noqa: F401
    backend._ensure_worker(0)
    backend._ensure_worker(1)
    assert backend.live_workers() == 2
    assert shutdown_all() >= 2
    assert backend.live_workers() == 0
    assert live_worker_count() == 0
    backend.close()  # idempotent


# -- telemetry ------------------------------------------------------------

def test_dispatch_latency_histogram_renders():
    world, node, engine = _backend_world(
        "async", shards=2, seed=1, with_telemetry=True
    )
    handle = world.neighbors["transit-west"]
    prefix = IPv4Prefix.parse("10.47.0.0/24")
    handle.speaker.originate(
        local_route(prefix, next_hop=handle.port.address)
    )
    world.scheduler.run_for(5)
    text = world.telemetry.render_prometheus()
    assert "vbgp_shard_dispatch_latency_seconds_bucket" in text
    assert 'backend="async"' in text
    handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5)
    node.close_shard_engine()
