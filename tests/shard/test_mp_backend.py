"""Worker-process crash recovery for the mp shard backend (ISSUE 9).

Satellite 4: a worker crash *mid-batch* (hard ``os._exit`` between two
encode jobs, injected through the backend's fault seam — the parent
sees exactly what a real crash produces: EOF on the pipe, no reply)
must flow through the existing kill/resurrect backlog-replay path and
converge back to the sync reference under the full six-invariant
conformance catalog, across seeds 0–4.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.bgp.attributes import local_route
from repro.chaos import build_chaos_world
from repro.conformance.invariants import ConformanceContext, run_invariants
from repro.netsim.addr import IPv4Prefix
from repro.parallel import live_worker_count

pytestmark = pytest.mark.timeout(300)


@pytest.fixture(autouse=True)
def _restore_perf_flags():
    saved = perf.FLAGS
    yield
    perf.FLAGS = saved
    perf.clear_caches()


def _client_prefix_snapshot(world):
    state = {}
    for name, client in world.clients.items():
        for pop_name, view in client.pops.items():
            state[f"{name}:{pop_name}"] = tuple(sorted(
                str(route.prefix) for route in view.routes.values()
            ))
    return state


def _full_catalog_ok(world):
    context = ConformanceContext.from_platform(
        world.platform,
        clients=world.clients,
        neighbor_speakers={
            name: handle.speaker
            for name, handle in world.neighbors.items()
        },
        neighbor_pops={
            name: handle.pop
            for name, handle in world.neighbors.items()
        },
    )
    reports = run_invariants(context)
    return {name: report.ok for name, report in reports.items()}


@pytest.mark.parametrize("seed", range(5))
def test_worker_crash_midbatch_replay_converges(seed):
    world = build_chaos_world(seed=seed, with_telemetry=False)
    perf.set_flags(shards=4, shard_backend="mp")
    node = world.platform.pops["west"].node
    handle = world.neighbors["transit-west"]
    engine = node._shard_engine_if_enabled()
    assert engine is not None
    backend = engine._backend
    gid = node.upstreams[handle.name].virtual.global_id
    victim = engine.shard_for_neighbor(gid)

    baseline = _client_prefix_snapshot(world)

    # Arm the crash: the victim's worker hard-exits two jobs into its
    # next batch, without replying — a genuine mid-batch death.
    backend.inject_crash(victim, after_jobs=2)

    burst = [
        IPv4Prefix.parse(f"10.10.{200 + index}.0/24")
        for index in range(24)
    ]
    for prefix in burst:
        handle.speaker.originate(
            local_route(prefix, next_hop=handle.port.address)
        )
    world.scheduler.run_for(5.0)

    # The crash landed: the shard is dead, its batch retained
    # backend-side (all-or-nothing), later items backlogged on the
    # inbox — and the dead OS process was reaped, not orphaned.
    assert not engine.workers[victim].alive
    assert engine.workers[victim].kills == 1
    assert engine.pending >= 1
    assert backend.pending_jobs(victim) >= 1
    assert engine.stats.worker_restarts >= 1

    for prefix in burst:
        handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5.0)

    # Heal: retained encode jobs replay on a fresh worker first, then
    # the inbox backlog replays in ingress order.
    replayed = engine.resurrect(victim)
    assert replayed >= 1
    world.scheduler.run_for(5.0)
    assert engine.pending == 0
    assert backend.pending_jobs(victim) == 0

    # Post-heal: announce+withdraw cancelled out — back to baseline,
    # and the *full* invariant catalog holds (nothing excused).
    assert _client_prefix_snapshot(world) == baseline
    verdicts = _full_catalog_ok(world)
    assert all(verdicts.values()), verdicts

    node.close_shard_engine()
    assert live_worker_count() == 0


def test_crash_during_replay_retains_jobs_again():
    """A second crash while replaying retained jobs must not lose them:
    they stay retained and a later resurrect completes the replay."""
    world = build_chaos_world(seed=0, with_telemetry=False)
    perf.set_flags(shards=4, shard_backend="mp")
    node = world.platform.pops["west"].node
    handle = world.neighbors["transit-west"]
    engine = node._shard_engine_if_enabled()
    backend = engine._backend
    gid = node.upstreams[handle.name].virtual.global_id
    victim = engine.shard_for_neighbor(gid)

    backend.inject_crash(victim, after_jobs=1)
    prefix = IPv4Prefix.parse("10.10.250.0/24")
    handle.speaker.originate(
        local_route(prefix, next_hop=handle.port.address)
    )
    world.scheduler.run_for(5.0)
    assert backend.pending_jobs(victim) >= 1
    retained = backend.pending_jobs(victim)

    # Crash again, immediately, during the replay dispatch itself.
    backend.inject_crash(victim, after_jobs=0)
    engine.resurrect(victim)
    assert backend.pending_jobs(victim) == retained  # nothing lost

    # Third time is clean: the replay drains completely.
    replayed_pending = engine.pending
    assert replayed_pending >= 0
    engine.resurrect(victim)
    world.scheduler.run_for(5.0)
    assert backend.pending_jobs(victim) == 0
    assert engine.pending == 0

    handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5.0)
    verdicts = _full_catalog_ok(world)
    assert all(verdicts.values()), verdicts
    node.close_shard_engine()
    assert live_worker_count() == 0


def test_hung_worker_fails_fast_and_recovers():
    """A wedged (not dead) worker trips the dispatch timeout and is
    treated exactly like a crash: terminated, batch retained."""
    import time

    from repro.parallel.backends import MpShardBackend
    from repro.parallel.protocol import EncodeJob
    from repro.bgp.messages import UpdateMessage
    from repro.bgp.attributes import (
        AsPath, AsPathSegment, Origin, PathAttributes, SegmentType,
    )
    from repro.netsim.addr import IPv4Address
    from repro.shard import MergeKey

    backend = MpShardBackend(1, dispatch_timeout_s=0.5)
    try:
        worker = backend._ensure_worker(0)
        # Wedge the worker: SIGSTOP freezes it without killing it.
        import os
        import signal

        os.kill(worker.process.pid, signal.SIGSTOP)
        attributes = PathAttributes(
            origin=Origin.IGP,
            as_path=AsPath(
                (AsPathSegment(SegmentType.AS_SEQUENCE, (65010,)),)
            ),
            next_hop=IPv4Address.parse("10.0.0.1"),
        )
        job = EncodeJob(
            key=MergeKey(0.0, 0, 0, 0),
            session=None,
            addpath=False,
            update=UpdateMessage(
                attributes=attributes,
                nlri=((IPv4Prefix.parse("10.1.0.0/24"), None),),
            ),
            counter=None,
        )
        started = time.monotonic()
        outcome = backend.dispatch({0: [job]})
        elapsed = time.monotonic() - started
        assert outcome.failed_shards == [0]
        assert elapsed < 30  # failed fast, did not wedge
        assert backend.pending_jobs(0) == 1
        # SIGCONT so terminate/join in _discard completed; verify reaped.
        assert backend.live_workers() == 0
        # Replay on a fresh worker succeeds.
        outcome = backend.resurrect_shard(0)
        assert len(outcome.completed) == 1
        assert backend.pending_jobs(0) == 0
    finally:
        backend.close()
    assert live_worker_count() == 0
