"""ShardedFanout engine: merge ordering, kill/resurrect, cost model.

Unit tests pin the merge-key semantics and the cost model; integration
tests drive a live chaos world with the ``shards=N`` perf knob and
prove deferral/replay semantics against the real vBGP node.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.bgp.attributes import local_route
from repro.chaos import build_chaos_world
from repro.netsim.addr import IPv4Prefix
from repro.shard import (
    FanoutOp,
    MergeKey,
    ShardCostModel,
    ShardedFanout,
    make_partition,
)


@pytest.fixture(autouse=True)
def _restore_perf_flags():
    saved = perf.FLAGS
    yield
    perf.FLAGS = saved
    perf.clear_caches()


# -- merge ordering -------------------------------------------------------

def test_merge_key_orders_by_time_then_global_seq():
    keys = [
        MergeKey(2.0, 5, 0, 0),
        MergeKey(1.0, 9, 3, 1),
        MergeKey(1.0, 9, 3, 0),
        MergeKey(1.0, 2, 7, 0),
    ]
    assert sorted(keys) == [
        MergeKey(1.0, 2, 7, 0),
        MergeKey(1.0, 9, 3, 0),
        MergeKey(1.0, 9, 3, 1),
        MergeKey(2.0, 5, 0, 0),
    ]


def test_merge_order_independent_of_shard_id():
    """Global ``seq`` precedes ``shard_id``: re-homing an op to a
    different shard (a different shard count) cannot reorder it."""
    few_shards = [FanoutOp(key=MergeKey(0.0, s, s % 2, 0), kind="send",
                           payload=s) for s in range(8)]
    many_shards = [FanoutOp(key=MergeKey(0.0, s, s % 8, 0), kind="send",
                            payload=s) for s in range(8)]
    order_few = [op.payload for op in sorted(few_shards,
                                             key=lambda op: op.key)]
    order_many = [op.payload for op in sorted(many_shards,
                                              key=lambda op: op.key)]
    assert order_few == order_many == list(range(8))


# -- cost model -----------------------------------------------------------

def test_cost_model_charges_deterministically():
    model = ShardCostModel(4, seed=0)
    assert model.shard_for("transit-west") == model.shard_for("transit-west")
    assert model.shard_for(17) == model.shard_for(17)
    shard = model.charge("transit-west", 0.5)
    model.charge("transit-west", 0.25)
    assert model.busy_s[shard] == pytest.approx(0.75)
    assert model.charges[shard] == 2


def test_cost_model_speedup_is_serial_over_max():
    model = ShardCostModel(2, seed=0)
    a = model.shard_for("a")
    other = 1 - a
    model.busy_s[a] = 3.0
    model.busy_s[other] = 1.0
    assert model.serial_s == pytest.approx(4.0)
    assert model.modeled_elapsed_s == pytest.approx(3.0)
    assert model.speedup() == pytest.approx(4.0 / 3.0)


def test_cost_model_validation_and_idle_speedup():
    with pytest.raises(ValueError):
        ShardCostModel(0)
    assert ShardCostModel(4).speedup() == 1.0


def test_engine_rejects_mismatched_partition():
    world = build_chaos_world(seed=0, with_telemetry=False)
    node = world.platform.pops["west"].node
    with pytest.raises(ValueError):
        ShardedFanout(node, 4, make_partition("neighbor", 2))


# -- live integration -----------------------------------------------------

def _sharded_world(shards=4, seed=0):
    world = build_chaos_world(seed=seed, with_telemetry=False)
    perf.set_flags(shards=shards)
    node = world.platform.pops["west"].node
    engine = node._shard_engine_if_enabled()
    assert engine is not None and engine.shard_count == shards
    return world, node, engine


def test_sharded_updates_flow_and_status_rows():
    world, node, engine = _sharded_world()
    handle = world.neighbors["transit-west"]
    prefix = IPv4Prefix.parse("10.77.0.0/24")
    handle.speaker.originate(local_route(prefix, next_hop=handle.port.address))
    world.scheduler.run_for(5)
    assert engine.pending == 0
    rows = node.shard_status()
    assert [row["shard"] for row in rows] == [0, 1, 2, 3]
    assert sum(row["items_processed"] for row in rows) >= 1
    assert all(row["alive"] for row in rows)
    # The PoP delegates shard_status to its node.
    assert world.platform.pops["west"].shard_status() == rows
    handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5)


def test_killed_shard_defers_and_resurrect_replays():
    world, node, engine = _sharded_world()
    handle = world.neighbors["transit-west"]
    gid = node.upstreams[handle.name].virtual.global_id
    victim = engine.shard_for_neighbor(gid)
    routes_before = node.counters["routes_installed"]
    engine.kill(victim)
    assert not engine.workers[victim].alive
    prefix = IPv4Prefix.parse("10.88.0.0/24")
    handle.speaker.originate(local_route(prefix, next_hop=handle.port.address))
    world.scheduler.run_for(5)
    # Deferred: queued on the dead shard, nothing applied.
    assert engine.pending >= 1
    assert node.counters["routes_installed"] == routes_before
    replayed = engine.resurrect(victim)
    assert replayed >= 1
    assert engine.pending == 0
    assert engine.workers[victim].alive
    assert node.counters["routes_installed"] > routes_before
    assert engine.stats.backlog_replayed == replayed
    handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5)


def test_kill_and_resurrect_are_idempotent():
    world, node, engine = _sharded_world()
    engine.kill(0)
    engine.kill(0)
    assert engine.workers[0].kills == 1
    assert engine.resurrect(0) == 0  # empty backlog
    assert engine.workers[0].alive


def test_engine_survives_flag_flip_with_backlog():
    """A pending backlog pins the engine across a flag change."""
    world, node, engine = _sharded_world()
    handle = world.neighbors["transit-west"]
    gid = node.upstreams[handle.name].virtual.global_id
    victim = engine.shard_for_neighbor(gid)
    engine.kill(victim)
    prefix = IPv4Prefix.parse("10.99.0.0/24")
    handle.speaker.originate(local_route(prefix, next_hop=handle.port.address))
    world.scheduler.run_for(5)
    assert engine.pending >= 1
    perf.set_flags(shards=2)
    assert node._shard_engine_if_enabled() is engine  # backlog pins it
    engine.resurrect(victim)
    assert engine.pending == 0
    # With the backlog drained the next update adopts the new count.
    assert node._shard_engine_if_enabled().shard_count == 2


def test_unsharded_when_flag_off():
    world = build_chaos_world(seed=0, with_telemetry=False)
    node = world.platform.pops["west"].node
    assert node._shard_engine_if_enabled() is None
    assert node.shard_status() == []
    assert node.shard_pending() == 0


def test_shard_telemetry_gauges_render():
    world = build_chaos_world(seed=1)
    perf.set_flags(shards=2)
    node = world.platform.pops["east"].node
    engine = node._shard_engine_if_enabled()
    assert engine is not None
    handle = world.neighbors["transit-east"]
    prefix = IPv4Prefix.parse("10.66.0.0/24")
    handle.speaker.originate(local_route(prefix, next_hop=handle.port.address))
    world.scheduler.run_for(5)
    text = world.telemetry.render_prometheus()
    assert 'vbgp_shard_queue_depth{node="east",shard="0"}' in text
    assert "vbgp_shard_alive" in text
    assert "vbgp_shard_merge_latency_seconds_bucket" in text
    handle.speaker.withdraw(prefix)
    world.scheduler.run_for(5)
