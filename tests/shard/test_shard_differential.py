"""Shard-count invariance: output identical at shards ∈ {1, 2, 4, 8}.

The quick sweeps run tier-1-sized workloads; the acceptance test runs
the CI-gate churn (≥5k updates).  A rigged harness proves the shard
comparison detects divergence.
"""

import pytest

from repro.conformance.differential import (
    DifferentialHarness,
    SHARD_COUNTS,
    _RunResult,
)


def test_shard_counts_cover_issue_matrix():
    assert SHARD_COUNTS == (1, 2, 4, 8)


def test_neighbor_partition_byte_identical_small():
    harness = DifferentialHarness(update_count=240, prefix_count=400)
    report = harness.run_shards(counts=(1, 2, 4))
    assert report.ok, report.format()
    assert report.combinations == 3
    assert "shard combinations" in report.format()


def test_prefix_partition_structurally_identical_small():
    harness = DifferentialHarness(update_count=240, prefix_count=400)
    report = harness.run_shards(counts=(1, 2, 4), partition="prefix")
    assert report.ok, report.format()


@pytest.mark.slow
def test_shard_sweep_acceptance():
    """The CI gate: byte-identical fan-out at every shard count on a
    >=5k-update churn (ISSUE acceptance criterion)."""
    harness = DifferentialHarness(update_count=5000)
    report = harness.run_shards(counts=SHARD_COUNTS)
    assert report.ok, report.format()
    assert report.updates >= 5000
    assert report.combinations == len(SHARD_COUNTS)


class _Rigged(DifferentialHarness):
    def __init__(self, results):
        super().__init__(update_count=1)
        self._results = list(results)

    def _run_scenario(self):
        return self._results.pop(0)


def _result(structural=b"s", changes=b"c", wire=b"w"):
    return _RunResult(
        structural=structural,
        changes_to_experiment=changes,
        changes_to_upstream=changes,
        wire_to_experiment=wire,
        wire_to_upstream=wire,
    )


def test_shard_sweep_detects_wire_divergence():
    rigged = _Rigged([_result(), _result(wire=b"DIFF")])
    report = rigged.run_shards(counts=(1, 2))
    assert not report.ok
    assert any("wire bytes" in m for m in report.mismatches)
    assert any("shards=2" in m for m in report.mismatches)


def test_shard_sweep_skips_wire_check_for_prefix_partition():
    """Prefix partitioning may repack NLRI (like fanout_batch): raw
    bytes may differ while structure and change streams must not."""
    rigged = _Rigged([_result(wire=b"one"), _result(wire=b"two")])
    report = rigged.run_shards(counts=(1, 2), partition="prefix")
    assert report.ok, report.format()


def test_shard_sweep_detects_structural_divergence_any_partition():
    rigged = _Rigged([_result(), _result(structural=b"DIFF")])
    report = rigged.run_shards(counts=(1, 4), partition="prefix")
    assert not report.ok
    assert any("Loc-RIB" in m for m in report.mismatches)
