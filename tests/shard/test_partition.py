"""Partition determinism: same seed + same key set ⇒ same assignments.

The partition layer must be a pure function of ``(key, seed,
shard_count)`` — never of the interpreter's salted builtin ``hash()``.
These tests pin golden values (guarding against accidental algorithm
changes), prove invariance under ``PYTHONHASHSEED`` in subprocesses,
and grep the package source for builtin-``hash`` usage.
"""

from __future__ import annotations

import ast
import inspect
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.shard.engine as engine_mod
import repro.shard.partition as partition_mod
from repro.netsim.addr import IPv4Prefix
from repro.shard import (
    NeighborPartition,
    PartitionFn,
    PrefixRangePartition,
    STRATEGIES,
    make_partition,
    stable_mix64,
    stable_str_key,
)

_REPO_SRC = Path(__file__).resolve().parents[2] / "src"


# -- golden values (cross-version pinning) --------------------------------

def test_stable_mix64_golden_values():
    assert stable_mix64(0) == 0xE220A8397B1DCDAF
    assert stable_mix64(1) == 0x910A2DEC89025CC1
    assert stable_mix64(1, seed=1) == 0xE99FF867DBF682C9
    assert stable_mix64(2 ** 40 + 7, seed=42) == 0x4D564EAA7C569FDD


def test_stable_str_key_golden_values():
    assert stable_str_key("") == 0xCBF29CE484222325  # FNV-1a offset basis
    assert stable_str_key("transit-west") == 0x8B008A674B8967BC
    assert stable_str_key("α-peer") == 0x6F700AF84D32B557  # UTF-8, not ASCII


def test_neighbor_partition_golden_assignments():
    partition = NeighborPartition(4, seed=0)
    assert [partition.shard_for_neighbor(g) for g in range(12)] == [
        3, 1, 2, 1, 2, 2, 0, 3, 2, 0, 2, 1,
    ]


# -- seed and run stability -----------------------------------------------

@pytest.mark.parametrize("strategy", STRATEGIES)
def test_same_seed_same_assignments(strategy):
    a = make_partition(strategy, 8, seed=7)
    b = make_partition(strategy, 8, seed=7)
    for gid in range(200):
        assert a.shard_for_neighbor(gid) == b.shard_for_neighbor(gid)
    for third in range(64):
        prefix = IPv4Prefix.parse(f"10.{third}.0.0/16")
        assert a.shard_for_prefix(prefix) == b.shard_for_prefix(prefix)


def test_different_seed_different_assignments():
    a = NeighborPartition(8, seed=0)
    b = NeighborPartition(8, seed=1)
    assignments_a = [a.shard_for_neighbor(g) for g in range(200)]
    assignments_b = [b.shard_for_neighbor(g) for g in range(200)]
    assert assignments_a != assignments_b


def test_assignments_cover_all_shards():
    for strategy in STRATEGIES:
        partition = make_partition(strategy, 4, seed=0)
        owners = {partition.shard_for_neighbor(g) for g in range(64)}
        assert owners == {0, 1, 2, 3}


def test_prefix_range_partition_keeps_blocks_together():
    partition = PrefixRangePartition(8, seed=3, range_bits=12)
    # All prefixes inside one /12 block share a shard...
    block = [
        IPv4Prefix.parse("10.1.0.0/16"),
        IPv4Prefix.parse("10.2.128.0/24"),
        IPv4Prefix.parse("10.15.255.0/24"),
    ]
    owners = {partition.shard_for_prefix(p) for p in block}
    assert len(owners) == 1
    # ...and blocks spread over multiple shards.
    spread = {
        partition.shard_for_prefix(IPv4Prefix.parse(f"{a}.0.0.0/12"))
        for a in range(0, 240, 16)
    }
    assert len(spread) > 1


def test_short_prefixes_still_map_deterministically():
    partition = PrefixRangePartition(4, seed=0, range_bits=12)
    wide = IPv4Prefix.parse("10.0.0.0/8")  # shorter than range_bits
    assert partition.shard_for_prefix(wide) == partition.shard_for_prefix(
        IPv4Prefix.parse("10.0.0.0/8")
    )


# -- PYTHONHASHSEED invariance (subprocess) -------------------------------

_SUBPROCESS_SNIPPET = """
import json, sys
sys.path.insert(0, {src!r})
from repro.netsim.addr import IPv4Prefix
from repro.shard import make_partition, stable_str_key
partition = make_partition({strategy!r}, 8, seed=11)
payload = {{
    "neighbors": [partition.shard_for_neighbor(g) for g in range(64)],
    "prefixes": [
        partition.shard_for_prefix(IPv4Prefix.parse(f"10.{{i}}.0.0/16"))
        for i in range(64)
    ],
    "names": [stable_str_key(f"neighbor-{{i}}") for i in range(16)],
}}
print(json.dumps(payload))
"""


def _assignments_under_hashseed(strategy: str, hash_seed: str) -> dict:
    snippet = _SUBPROCESS_SNIPPET.format(src=str(_REPO_SRC),
                                         strategy=strategy)
    result = subprocess.run(
        [sys.executable, "-c", snippet],
        capture_output=True,
        text=True,
        env={"PYTHONHASHSEED": hash_seed, "PATH": "/usr/bin:/bin"},
        check=True,
    )
    return json.loads(result.stdout)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_assignments_survive_hash_randomization(strategy):
    """Two interpreters with different hash salts agree exactly."""
    first = _assignments_under_hashseed(strategy, "1")
    second = _assignments_under_hashseed(strategy, "4242")
    assert first == second


# -- hygiene --------------------------------------------------------------

def test_no_builtin_hash_in_shard_package():
    """No *call* to builtin ``hash`` anywhere in repro.shard."""
    for module in (partition_mod, engine_mod):
        tree = ast.parse(inspect.getsource(module))
        calls = [
            node for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "hash"
        ]
        assert not calls, f"{module.__name__} calls builtin hash()"


def test_make_partition_rejects_unknown_strategy():
    with pytest.raises(ValueError, match="unknown shard partition"):
        make_partition("bogus", 4)


def test_partitions_satisfy_protocol():
    assert isinstance(NeighborPartition(2), PartitionFn)
    assert isinstance(PrefixRangePartition(2), PartitionFn)


def test_shard_count_validation():
    with pytest.raises(ValueError):
        NeighborPartition(0)
    with pytest.raises(ValueError):
        PrefixRangePartition(4, range_bits=0)
