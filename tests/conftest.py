"""Shared fixtures: schedulers, a small platform, a platform + Internet."""

from __future__ import annotations

import pytest

from repro.internet import InternetConfig, build_internet
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


@pytest.fixture(autouse=True)
def _no_leaked_shard_workers():
    """ISSUE 9 satellite: zero leaked backend workers after every test.

    A test that spawns an mp shard backend (directly or via
    ``shard_backend="mp"``) must close it — a leaked worker process
    here would outlive the test and eventually wedge CI.  The guard
    reaps anything it finds so one offender cannot cascade, then fails
    the offending test by name.
    """
    from repro.parallel.backends import live_worker_count, shutdown_all

    yield
    leaked = live_worker_count()
    if leaked:
        shutdown_all()
        pytest.fail(
            f"{leaked} shard backend worker process(es) leaked by this "
            "test (engine/backend not closed)"
        )


@pytest.fixture(autouse=True)
def _no_leaked_sockets():
    """ISSUE 10: zero leaked transport sockets after every test.

    Any test that opens a ``SocketChannel`` / ``SocketListener`` must
    close it (directly or by tearing down its poller/fleet).  The guard
    sweeps stragglers so one offender cannot starve later tests of FDs,
    then fails the offending test by name.
    """
    from repro.bgp.transport import close_all_sockets, open_socket_count

    yield
    leaked = open_socket_count()
    if leaked:
        close_all_sockets()
        pytest.fail(
            f"{leaked} transport socket(s) leaked by this test "
            "(channel/listener not closed)"
        )


@pytest.fixture(autouse=True)
def _no_leaked_fleet_processes():
    """ISSUE 10: zero leaked per-PoP fleet processes after every test."""
    from repro.fleet.controller import (
        live_fleet_process_count,
        shutdown_all_fleets,
    )

    yield
    leaked = live_fleet_process_count()
    if leaked:
        shutdown_all_fleets()
        pytest.fail(
            f"{leaked} fleet PoP process(es) leaked by this test "
            "(controller not shut down)"
        )


def small_pop_configs() -> list[PopConfig]:
    """Two university + one IXP PoPs, all on the backbone."""
    return [
        PopConfig(name="uni-a", pop_id=0, kind="university", backbone=True),
        PopConfig(name="uni-b", pop_id=1, kind="university", backbone=True),
        PopConfig(name="ix-c", pop_id=2, kind="ixp", backbone=True),
    ]


@pytest.fixture
def small_platform(scheduler: Scheduler) -> PeeringPlatform:
    return PeeringPlatform(scheduler, pop_configs=small_pop_configs())


@pytest.fixture
def small_world(scheduler: Scheduler):
    """Platform + synthetic Internet, converged."""
    platform = PeeringPlatform(scheduler, pop_configs=small_pop_configs())
    internet = build_internet(
        scheduler,
        platform,
        InternetConfig(n_tier1=2, n_transit=3, n_stub=5,
                       ixp_members_per_ixp=3, with_looking_glass=False),
    )
    scheduler.run_for(30)
    return scheduler, platform, internet


def approve_experiment(platform: PeeringPlatform, name: str = "exp",
                       **kwargs) -> None:
    proposal = ExperimentProposal(
        name=name,
        contact="tester@example.edu",
        goals="reproduction test",
        execution_plan="announce, observe, measure",
        **kwargs,
    )
    decision, reason = platform.submit_proposal(proposal)
    assert decision.value == "approve", reason


@pytest.fixture
def connected_client(small_world):
    """An approved experiment connected at all three PoPs, with BGP up."""
    scheduler, platform, internet = small_world
    approve_experiment(platform, "exp")
    client = ExperimentClient(scheduler, "exp", platform)
    for pop in platform.pops:
        client.openvpn_up(pop)
        client.bird_start(pop)
    scheduler.run_for(10)
    return scheduler, platform, internet, client
