"""ChangeSet model: validation, canonical serialization, digests."""

import pytest

from repro.intent import (
    ChangeOp,
    ChangeSet,
    announce_op,
    connect_op,
    disconnect_op,
    parse_community,
    set_communities_op,
    withdraw_op,
)


def sample_changeset() -> ChangeSet:
    return ChangeSet(name="sample", ops=(
        announce_op("alpha", "184.164.224.0/24", pops=("west",),
                    communities=("47065:10001",), prepend=2,
                    poison=(65001,)),
        withdraw_op("alpha", "184.164.225.0/24"),
        set_communities_op("alpha", "184.164.224.0/24", ("47064:20",)),
        connect_op("beta", "east"),
        disconnect_op("beta", "west"),
    ))


def test_round_trip_preserves_everything():
    changeset = sample_changeset()
    restored = ChangeSet.from_json(changeset.to_json())
    assert restored == changeset
    assert restored.digest() == changeset.digest()


def test_serialization_is_canonical_and_digest_stable():
    changeset = sample_changeset()
    assert changeset.to_json() == sample_changeset().to_json()
    # A semantic change must change the digest.
    other = changeset.with_op(withdraw_op("beta", "184.164.226.0/24"))
    assert other.digest() != changeset.digest()


def test_validate_rejects_unknown_kind_and_missing_fields():
    with pytest.raises(ValueError, match="unknown op kind"):
        ChangeOp(kind="explode", experiment="alpha").validate()
    with pytest.raises(ValueError, match="needs a prefix"):
        ChangeOp(kind="announce", experiment="alpha").validate()
    with pytest.raises(ValueError, match="needs a pop"):
        ChangeOp(kind="connect", experiment="alpha").validate()
    with pytest.raises(ValueError, match="needs an experiment"):
        ChangeOp(kind="withdraw", experiment="",
                 prefix="10.0.0.0/24").validate()
    sample_changeset().validate()  # all well-formed ops pass


def test_empty_and_with_op():
    empty = ChangeSet(name="empty")
    assert empty.is_empty()
    grown = empty.with_op(withdraw_op("alpha", "184.164.224.0/24"))
    assert not grown.is_empty()
    assert empty.is_empty()  # with_op is non-destructive


def test_describe_mentions_every_op():
    text = sample_changeset().describe()
    for token in ("announce", "withdraw", "set-communities",
                  "connect beta@east", "disconnect beta@west",
                  "prepend=2", "poison=65001", "47065:10001"):
        assert token in text


def test_parse_community():
    assert parse_community("47065:10001") == (47065, 10001)
    assert parse_community("nonsense") is None
    assert parse_community("1:2:3") is None
    assert parse_community("a:b") is None
