"""DryRunEvaluator: determinism, no live mutation, predicted diffs."""

from repro.intent import (
    ChangeSet,
    announce_op,
    connect_op,
    disconnect_op,
    set_communities_op,
    withdraw_op,
)


def _changeset(*ops):
    return ChangeSet(name="t", ops=tuple(ops))


def spare_prefix(world):
    return str(world.clients["alpha"].profile.prefixes[1])


def test_consecutive_plans_are_byte_identical(intent_world):
    """The dry-run determinism property: same state, same bytes."""
    controller = intent_world.controller
    changeset = _changeset(
        announce_op("alpha", spare_prefix(intent_world), pops=("west",),
                    communities=("47065:10001",)),
        withdraw_op(
            "alpha", str(intent_world.clients["alpha"].profile.prefixes[0])
        ),
    )
    first = controller.evaluator.evaluate(changeset)
    second = controller.evaluator.evaluate(changeset)
    assert first.to_bytes() == second.to_bytes()


def test_evaluate_does_not_touch_the_live_platform(intent_world):
    controller = intent_world.controller
    before_fp = controller._fingerprint()
    before_checked = {
        name: pop.control_enforcer.routes_checked
        for name, pop in intent_world.platform.pops.items()
    }
    report = controller.evaluator.evaluate(_changeset(
        announce_op("alpha", spare_prefix(intent_world)),
        announce_op("alpha", "8.8.8.0/24"),  # rejected, still no mutation
    ))
    assert report.rejections  # the hijack was predicted as rejected
    assert controller._fingerprint() == before_fp
    for name, pop in intent_world.platform.pops.items():
        assert pop.control_enforcer.routes_checked == before_checked[name]
        assert not pop.control_enforcer.violations


def test_plain_announce_predicts_local_export_only(intent_world):
    report = intent_world.controller.evaluator.evaluate(_changeset(
        announce_op("alpha", spare_prefix(intent_world), pops=("west",)),
    ))
    assert report.ok
    assert report.changed_neighbors() == ["west/transit-west"]
    diff = report.diffs["west/transit-west"]
    assert [c.prefix for c in diff.added] == [spare_prefix(intent_world)]
    assert diff.wire_delta > 0
    assert report.diffs["east/transit-east"].is_empty()


def test_whitelist_community_predicts_remote_export(intent_world):
    """47065:10001 whitelists PoP 1 (east): the announcement made at
    west must exit only through the east transit, via the backbone."""
    report = intent_world.controller.evaluator.evaluate(_changeset(
        announce_op("alpha", spare_prefix(intent_world), pops=("west",),
                    communities=("47065:10001",)),
    ))
    assert report.ok
    assert report.changed_neighbors() == ["east/transit-east"]
    added = report.diffs["east/transit-east"].added
    assert [c.prefix for c in added] == [spare_prefix(intent_world)]
    # Control communities are consumed on export, never leaked.
    assert all("47065" not in c for c in added[0].communities)


def test_withdraw_predicts_removals_everywhere(intent_world):
    announced = str(intent_world.clients["alpha"].profile.prefixes[0])
    report = intent_world.controller.evaluator.evaluate(_changeset(
        withdraw_op("alpha", announced),
    ))
    assert report.ok
    assert report.changed_neighbors() == [
        "east/transit-east", "west/transit-west"
    ]
    for name in report.changed_neighbors():
        diff = report.diffs[name]
        assert [c.prefix for c in diff.removed] == [announced]
        assert diff.wire_delta < 0


def test_set_communities_predicts_changed_route(intent_world):
    announced = str(intent_world.clients["alpha"].profile.prefixes[0])
    report = intent_world.controller.evaluator.evaluate(_changeset(
        set_communities_op("alpha", announced, ("65000:42",)),
    ))
    assert report.ok
    diff = report.diffs["west/transit-west"]
    assert [c.prefix for c in diff.changed] == [announced]
    assert diff.changed[0].communities_added == ("65000:42",)


def test_set_communities_requires_existing_announcement(intent_world):
    report = intent_world.controller.evaluator.evaluate(_changeset(
        set_communities_op("alpha", spare_prefix(intent_world),
                           ("65000:42",)),
    ))
    assert not report.ok
    assert any("not announced" in r for r in report.rejections)


def test_disconnect_predicts_export_removal(intent_world):
    announced = str(intent_world.clients["alpha"].profile.prefixes[0])
    report = intent_world.controller.evaluator.evaluate(_changeset(
        disconnect_op("alpha", "west"),
    ))
    assert report.ok
    west = report.diffs["west/transit-west"]
    assert [c.prefix for c in west.removed] == [announced]
    # Still announced at east: no change there.
    assert report.diffs["east/transit-east"].is_empty()


def test_rejections_for_bad_targets(intent_world):
    evaluator = intent_world.controller.evaluator
    # Not connected at that PoP.
    report = evaluator.evaluate(_changeset(
        announce_op("beta", str(
            intent_world.clients["beta"].profile.prefixes[0]
        ), pops=("east",)),
    ))
    assert any("not connected" in r for r in report.rejections)
    # Unknown experiment.
    report = evaluator.evaluate(_changeset(
        announce_op("ghost", "184.164.224.0/24"),
    ))
    assert any("no connected client" in r for r in report.rejections)
    # Announce over a session this very ChangeSet is bringing up.
    report = evaluator.evaluate(_changeset(
        connect_op("beta", "east"),
        announce_op("beta", str(
            intent_world.clients["beta"].profile.prefixes[0]
        ), pops=("east",)),
    ))
    assert any("split into two ChangeSets" in r for r in report.rejections)
    # Connecting an already-connected PoP would raise live.
    report = evaluator.evaluate(_changeset(connect_op("alpha", "west")))
    assert any("already up" in r for r in report.rejections)


def test_rate_limit_budget_accumulates_within_changeset(intent_world):
    limit = intent_world.platform.enforcer_state.per_pop_limit
    prefix = spare_prefix(intent_world)
    ops = tuple(
        announce_op("alpha", prefix, pops=("west",))
        for _ in range(limit + 1)
    )
    report = intent_world.controller.evaluator.evaluate(_changeset(*ops))
    assert any("rate limit" in r for r in report.rejections)
    # One fewer op fits the budget.
    report = intent_world.controller.evaluator.evaluate(
        _changeset(*ops[:limit])
    )
    assert report.ok


def test_empty_changeset_predicts_nothing(intent_world):
    report = intent_world.controller.evaluator.evaluate(ChangeSet(name="e"))
    assert report.ok
    assert report.changed_neighbors() == []
    assert all(r.ok for r in report.invariants.values())
