"""``peering intent`` CLI surface and the shared exit-code convention."""

from repro.toolkit import ToolkitCli


def _cli(intent_world):
    return ToolkitCli(intent_world.clients["alpha"])


def _spare(intent_world) -> str:
    return str(intent_world.clients["alpha"].profile.prefixes[1])


def test_usage_and_unknown_commands_exit_2(intent_world):
    toolkit = _cli(intent_world)
    for command in ("peering intent", "peering intent bogus",
                    "peering bogus", "peering intent revert"):
        _out, status = toolkit.run_with_status(command)
        assert status == 2, command


def test_usage_documents_the_exit_code_convention(intent_world):
    toolkit = _cli(intent_world)
    usage = toolkit.run("peering")
    assert "exit codes" in usage
    assert "0  clean" in usage
    assert "1  breach" in usage
    assert "2  usage" in usage
    for sub in ("intent op", "intent plan", "intent diff",
                "intent apply", "intent history"):
        assert sub in usage


def test_op_accumulation_show_and_clear(intent_world):
    toolkit = _cli(intent_world)
    out, status = toolkit.run_with_status(
        f"peering intent op announce {_spare(intent_world)} -m west"
    )
    assert status == 0
    assert "op 1" in out
    out = toolkit.run("peering intent show")
    assert _spare(intent_world) in out
    out, status = toolkit.run_with_status("peering intent clear")
    assert status == 0
    assert "cleared 1" in out
    assert _spare(intent_world) not in toolkit.run("peering intent show")


def test_clean_plan_apply_history_exit_0(intent_world):
    toolkit = _cli(intent_world)
    toolkit.run(f"peering intent op announce {_spare(intent_world)} -m west")
    out, status = toolkit.run_with_status("peering intent diff")
    assert status == 0
    assert "west/transit-west" in out

    out, status = toolkit.run_with_status("peering intent plan")
    assert status == 0
    assert "intent-" in out

    out, status = toolkit.run_with_status("peering intent apply")
    assert status == 0
    assert "committed" in out

    out, status = toolkit.run_with_status("peering intent history")
    assert status == 0
    assert "committed" in out

    # run() remains the compatible single-string entry point; the last
    # status stays readable on .exit_code.
    toolkit.run("peering intent history")
    assert toolkit.exit_code == 0


def test_breaching_plan_exits_1(intent_world):
    toolkit = _cli(intent_world)
    toolkit.run("peering intent op announce 8.8.8.0/24 -m west")
    out, status = toolkit.run_with_status("peering intent plan")
    assert status == 1
    assert "not owned" in out or "reject" in out

    # Unforced apply of the breaching plan: rejected, exit 1.
    out, status = toolkit.run_with_status("peering intent apply")
    assert status == 1
    assert "rejected" in out


def test_forced_apply_auto_reverts_and_exits_1(intent_world):
    toolkit = _cli(intent_world)
    toolkit.run("peering intent op announce 8.8.8.0/24 -m west")
    toolkit.run("peering intent plan")
    out, status = toolkit.run_with_status("peering intent apply --force")
    assert status == 1
    assert "reverted" in out


def test_verify_shares_the_convention(intent_world):
    toolkit = _cli(intent_world)
    _out, status = toolkit.run_with_status("peering verify invariants")
    assert status == 0
