"""IntentController: commit, auto-revert, snapshots, lifecycle events."""

import pytest

from repro import perf
from repro.chaos.faults import ChannelFaultInjector
from repro.netsim.addr import IPv4Prefix
from repro.conformance.differential import attr_fingerprint
from repro.intent import ChangeSet, announce_op, withdraw_op
from repro.telemetry.station import IntentEvent, RouteMonitoring

from tests.intent.conftest import build_intent_world


def _spare(world) -> str:
    return str(world.clients["alpha"].profile.prefixes[1])


def _benign(world) -> ChangeSet:
    return ChangeSet(name="benign", ops=(
        announce_op("alpha", _spare(world), pops=("west",)),
    ))


def _hijack() -> ChangeSet:
    return ChangeSet(name="hijack", ops=(
        announce_op("alpha", "8.8.8.0/24", pops=("west",)),
    ))


def test_benign_commit_matches_observed_bmp_stream(intent_world):
    """The committed plan's predicted export diff must match the change
    stream the BMP station observes at the neighbors — exactly."""
    world = intent_world
    plan = world.controller.plan(_benign(world))
    assert plan.report.ok
    predicted = plan.report.diffs["west/transit-west"]
    marker = len(world.telemetry.station.history)

    record = world.controller.apply(plan)
    assert record.phase == "committed"
    assert world.controller.phase(plan.intent_id) == "committed"

    observed = [
        msg for msg in list(world.telemetry.station.history)[marker:]
        if isinstance(msg, RouteMonitoring)
    ]
    by_peer: dict = {}
    for msg in observed:
        entry = by_peer.setdefault(msg.peer, {"announced": [], "wd": []})
        entry["announced"].extend(msg.announced)
        entry["wd"].extend(msg.withdrawn)

    west_key = world.neighbors["transit-west"].session_name
    east_key = world.neighbors["transit-east"].session_name
    # Only the predicted neighbor saw UPDATEs.
    assert east_key not in by_peer
    seen = by_peer[west_key]
    assert not seen["wd"]
    assert (
        sorted((str(r.prefix), attr_fingerprint(r.attributes))
               for r in seen["announced"])
        == sorted((c.prefix, c.fingerprint) for c in predicted.added)
    )


def test_lifecycle_events_reach_the_station(intent_world):
    world = intent_world
    plan = world.controller.plan(_benign(world))
    world.controller.apply(plan)
    phases = [
        msg.phase for msg in world.telemetry.station.history
        if isinstance(msg, IntentEvent)
        and msg.peer == f"intent:{plan.intent_id}"
    ]
    assert phases == ["planned", "applied", "committed"]
    assert plan.intent_id in world.controller.history_text()


def test_forced_breach_auto_reverts_to_exact_snapshot(intent_world):
    """The acceptance drill: an invariant-breaking ChangeSet is applied
    with force, breaches are detected live, and auto-revert restores a
    byte-identical platform fingerprint (Loc-RIBs, kernel tables,
    announced wire bytes)."""
    world = intent_world
    before = world.controller._fingerprint()
    plan = world.controller.plan(_hijack())
    assert not plan.report.ok

    record = world.controller.apply(plan, force=True)
    assert record.phase == "reverted"
    assert record.breaches
    assert record.revert_clean is True
    assert world.controller._fingerprint() == before
    # The hijack never leaked to a neighbor.
    hijacked = IPv4Prefix.parse("8.8.8.0/24")
    for handle in world.neighbors.values():
        assert handle.speaker.best_route(hijacked) is None


def test_unforced_breach_is_rejected_without_touching_platform(intent_world):
    world = intent_world
    before = world.controller._fingerprint()
    plan = world.controller.plan(_hijack())
    record = world.controller.apply(plan)
    assert record.phase == "rejected"
    assert world.controller._fingerprint() == before
    with pytest.raises(ValueError, match="rejected"):
        world.controller.apply(plan)


def test_empty_changeset_is_a_noop_commit(intent_world):
    world = intent_world
    before = world.controller._fingerprint()
    record = world.controller.apply(
        world.controller.plan(ChangeSet(name="noop"))
    )
    assert record.phase == "committed"
    assert "no-op" in record.detail
    assert world.controller._fingerprint() == before


def test_apply_is_single_shot(intent_world):
    world = intent_world
    plan = world.controller.plan(_benign(world))
    assert world.controller.apply(plan).phase == "committed"
    with pytest.raises(ValueError, match="committed"):
        world.controller.apply(plan)


def test_apply_with_dead_client_session_reverts(intent_world):
    """Staging over a torn-down BGP session fails; the transaction
    reverts instead of leaving a half-applied ChangeSet behind."""
    world = intent_world
    plan = world.controller.plan(_benign(world))
    world.clients["alpha"].bird_stop("west")
    world.scheduler.run_for(5)

    record = world.controller.apply(plan)
    assert record.phase == "reverted"
    assert any("staging failed" in b for b in record.breaches)
    assert record.revert_clean is True
    assert _spare(world) not in {
        str(p) for p in world.clients["alpha"].pops["west"].announced
    }


def test_neighbor_fault_mid_apply_reverts(intent_world):
    """A neighbor that stops hearing us mid-apply turns the predicted
    export diff into a breach; auto-revert restores the pre-plan state
    once the fault heals."""
    world = intent_world
    before = world.controller._fingerprint()
    plan = world.controller.plan(_benign(world))
    fault = ChannelFaultInjector(
        world.scheduler, world.neighbors["transit-west"].port.channel,
        drop=1.0, label="dead-neighbor",
    )
    fault.inject()
    record = world.controller.apply(plan)
    assert record.phase == "reverted"
    assert record.breaches
    fault.heal()
    world.scheduler.run_for(30)
    assert world.controller._fingerprint() == before


def test_operator_revert_and_double_revert_idempotency(intent_world):
    world = intent_world
    before = world.controller._fingerprint()
    plan = world.controller.plan(_benign(world))
    assert world.controller.apply(plan).phase == "committed"
    assert world.controller._fingerprint() != before

    first = world.controller.revert(plan)
    assert first.phase == "reverted"
    assert first.revert_clean is True
    assert world.controller._fingerprint() == before

    second = world.controller.revert(plan)
    assert "nothing to revert" in second.detail
    assert world.controller._fingerprint() == before


def test_withdraw_roundtrip_commits(intent_world):
    world = intent_world
    announced = world.clients["alpha"].profile.prefixes[0]
    plan = world.controller.plan(ChangeSet(name="wd", ops=(
        withdraw_op("alpha", str(announced)),
    )))
    record = world.controller.apply(plan)
    assert record.phase == "committed"
    for handle in world.neighbors.values():
        assert handle.speaker.best_route(announced) is None


def test_snapshot_correctness_under_perf_flags():
    """Snapshot/revert must hold with the sharded fan-out engine and the
    columnar RIB enabled (the state lives in different structures)."""
    with perf.flags(shards=2, rib_columnar=True):
        world = build_intent_world()
        before = world.controller._fingerprint()
        record = world.controller.apply(
            world.controller.plan(_hijack()), force=True
        )
        assert record.phase == "reverted"
        assert record.revert_clean is True
        assert world.controller._fingerprint() == before

        commit = world.controller.apply(world.controller.plan(_benign(world)))
        assert commit.phase == "committed"
        west = world.neighbors["transit-west"].speaker
        spare = world.clients["alpha"].profile.prefixes[1]
        assert west.best_route(spare) is not None
