"""A small two-PoP world wired for intent-layer tests.

Like the chaos world (two backbone PoPs, one transit per PoP, two
experiments) but with the external speakers *instrumented*: each
transit's session carries a distinct description and publishes to the
platform's BMP station, so tests can compare a plan's predicted export
diff against the observed change stream at the neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

import pytest

from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.intent import IntentController
from repro.netsim.addr import IPv4Prefix
from repro.platform.experiment import CapabilityRequest, ExperimentProposal
from repro.security.capabilities import Capability
from repro.platform.peering import PeeringPlatform
from repro.platform.pop import NeighborPort, PopConfig
from repro.sim.scheduler import Scheduler
from repro.telemetry import TelemetryHub
from repro.toolkit.client import ExperimentClient


@dataclass
class TransitHandle:
    pop: str
    name: str
    speaker: BgpSpeaker
    port: NeighborPort
    dest: IPv4Prefix
    session_name: str


@dataclass
class IntentWorld:
    scheduler: Scheduler
    platform: PeeringPlatform
    telemetry: TelemetryHub
    neighbors: Dict[str, TransitHandle] = field(default_factory=dict)
    clients: Dict[str, ExperimentClient] = field(default_factory=dict)
    controller: IntentController = None


def build_intent_world(settle_time: float = 15.0) -> IntentWorld:
    scheduler = Scheduler()
    telemetry = TelemetryHub(scheduler)
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[
            PopConfig(name="west", pop_id=0, kind="ixp", backbone=True),
            PopConfig(name="east", pop_id=1, kind="university",
                      backbone=True),
        ],
        telemetry=telemetry,
    )
    neighbors: Dict[str, TransitHandle] = {}
    for pop_name, nname, asn, dest in (
        ("west", "transit-west", 65010, IPv4Prefix.parse("10.10.0.0/16")),
        ("east", "transit-east", 65020, IPv4Prefix.parse("10.20.0.0/16")),
    ):
        port = platform.pops[pop_name].provision_neighbor(
            nname, asn, kind="transit"
        )
        speaker = BgpSpeaker(
            scheduler,
            SpeakerConfig(asn=asn, router_id=port.address),
            telemetry=telemetry,
        )
        session_name = f"{nname}:from-pop"
        speaker.attach_neighbor(
            NeighborConfig(
                name=session_name,
                peer_asn=None,
                local_address=port.address,
            ),
            port.channel,
        )
        speaker.originate(local_route(dest, next_hop=port.address))
        neighbors[nname] = TransitHandle(
            pop=pop_name, name=nname, speaker=speaker, port=port,
            dest=dest, session_name=session_name,
        )

    clients: Dict[str, ExperimentClient] = {}
    for name, pops, prefix_count in (
        ("alpha", ("west", "east"), 2),
        ("beta", ("west",), 1),
    ):
        platform.submit_proposal(ExperimentProposal(
            name=name,
            contact="intent@example.edu",
            goals="transactional config drill",
            execution_plan="announce, observe, measure",
            prefix_count=prefix_count,
            capability_requests=[
                CapabilityRequest(Capability.BGP_COMMUNITIES, limit=4,
                                  justification="community steering"),
            ],
        ))
        client = ExperimentClient(scheduler, name, platform)
        for pop_name in pops:
            client.openvpn_up(pop_name)
            client.bird_start(pop_name)
        clients[name] = client
    scheduler.run_for(30)
    clients["alpha"].announce(clients["alpha"].profile.prefixes[0])
    scheduler.run_for(30)
    controller = IntentController(
        scheduler,
        platform,
        clients,
        neighbor_speakers={
            name: handle.speaker for name, handle in neighbors.items()
        },
        neighbor_pops={
            name: handle.pop for name, handle in neighbors.items()
        },
        telemetry=telemetry,
        settle_time=settle_time,
    )
    return IntentWorld(
        scheduler=scheduler,
        platform=platform,
        telemetry=telemetry,
        neighbors=neighbors,
        clients=clients,
        controller=controller,
    )


@pytest.fixture
def intent_world() -> IntentWorld:
    return build_intent_world()
