"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim import Scheduler, SimulationError


def test_starts_at_zero():
    assert Scheduler().now == 0.0


def test_call_later_advances_clock():
    sched = Scheduler()
    seen = []
    sched.call_later(2.5, lambda: seen.append(sched.now))
    sched.run()
    assert seen == [2.5]


def test_events_fire_in_time_order():
    sched = Scheduler()
    order = []
    sched.call_later(3.0, lambda: order.append("c"))
    sched.call_later(1.0, lambda: order.append("a"))
    sched.call_later(2.0, lambda: order.append("b"))
    sched.run()
    assert order == ["a", "b", "c"]


def test_ties_broken_by_insertion_order():
    sched = Scheduler()
    order = []
    for label in "abc":
        sched.call_later(1.0, lambda l=label: order.append(l))
    sched.run()
    assert order == ["a", "b", "c"]


def test_cancelled_events_do_not_fire():
    sched = Scheduler()
    fired = []
    event = sched.call_later(1.0, lambda: fired.append(1))
    event.cancel()
    sched.run()
    assert fired == []


def test_run_until_stops_at_deadline():
    sched = Scheduler()
    seen = []
    sched.call_later(1.0, lambda: seen.append(1))
    sched.call_later(5.0, lambda: seen.append(5))
    sched.run_until(2.0)
    assert seen == [1]
    assert sched.now == 2.0
    sched.run()
    assert seen == [1, 5]


def test_run_for_is_relative():
    sched = Scheduler()
    sched.run_for(10.0)
    assert sched.now == 10.0
    sched.run_for(5.0)
    assert sched.now == 15.0


def test_nested_scheduling_during_run():
    sched = Scheduler()
    seen = []

    def outer():
        seen.append("outer")
        sched.call_later(1.0, lambda: seen.append("inner"))

    sched.call_later(1.0, outer)
    sched.run()
    assert seen == ["outer", "inner"]
    assert sched.now == 2.0


def test_call_soon_runs_at_current_time():
    sched = Scheduler()
    sched.call_later(4.0, lambda: None)
    seen = []
    sched.call_soon(lambda: seen.append(sched.now))
    sched.step()
    assert seen == [0.0]


def test_scheduling_in_past_rejected():
    sched = Scheduler()
    sched.run_for(10)
    with pytest.raises(SimulationError):
        sched.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Scheduler().call_later(-1.0, lambda: None)


def test_runaway_loop_detected():
    sched = Scheduler()

    def respawn():
        sched.call_later(0.001, respawn)

    respawn()
    with pytest.raises(SimulationError):
        sched.run(max_events=100)


def test_pending_counts_uncancelled():
    sched = Scheduler()
    event = sched.call_later(1.0, lambda: None)
    sched.call_later(2.0, lambda: None)
    assert sched.pending() == 2
    event.cancel()
    assert sched.pending() == 1


def test_step_returns_false_when_empty():
    assert Scheduler().step() is False


def test_run_returns_fired_count():
    sched = Scheduler()
    for _ in range(5):
        sched.call_later(1.0, lambda: None)
    assert sched.run() == 5
