"""Metrics tests: memory model calibration, CPU accounting, throughput."""

import pytest

from repro.bgp.attributes import Community, originate
from repro.metrics import (
    FIB_ENTRY_BYTES,
    estimate_tcp_throughput,
    measure_processing,
    memory_report,
    rib_memory,
    route_memory_bytes,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix


def typical_route(index=0):
    """A representative Internet route: 4-hop path, 2 communities."""
    return originate(
        IPv4Prefix.parse(f"10.{index % 256}.0.0/16"),
        3356,
        IPv4Address.parse("1.1.1.1"),
        communities=(Community(3356, 100), Community(3356, 200)),
    ).prepended(2914).prepended(1299).prepended(174)


class TestMemoryModel:
    def test_calibrated_to_327_bytes_per_route(self):
        """§6: 'approximately 327B/route'."""
        routes = [typical_route(i) for i in range(100)]
        per_route = rib_memory(routes) / len(routes)
        assert 300 <= per_route <= 355

    def test_longer_paths_cost_more(self):
        short = typical_route()
        long = short.prepended(65000, 10)
        assert route_memory_bytes(long) > route_memory_bytes(short)

    def test_linear_in_route_count(self):
        small = rib_memory([typical_route(i) for i in range(100)])
        large = rib_memory([typical_route(i) for i in range(200)])
        assert abs(large - 2 * small) < small * 0.01

    def test_report_ordering(self):
        """Figure 6a: control < data plane < data plane w/ default."""
        routes = [typical_route(i) for i in range(500)]
        report = memory_report(routes)
        assert report.control_plane < report.data_plane
        assert report.data_plane < report.data_plane_with_default
        assert report.data_plane == report.control_plane + (
            FIB_ENTRY_BYTES * 500
        )

    def test_32gib_supports_100m_routes(self):
        """§6: '32GiB of RAM to support 100 million routes'."""
        per_route = route_memory_bytes(typical_route())
        assert per_route * 100_000_000 < 34 * (1 << 30)


class TestCpuModel:
    def test_measurement_counts_and_times(self):
        measurement = measure_processing(
            "noop", lambda update: None, list(range(1000))
        )
        assert measurement.updates == 1000
        assert measurement.total_seconds > 0
        assert measurement.seconds_per_update > 0

    def test_utilization_linear_in_rate(self):
        measurement = measure_processing(
            "noop", lambda update: None, list(range(1000))
        )
        low = measurement.utilization(100)
        high = measurement.utilization(200)
        assert high == pytest.approx(2 * low)

    def test_utilization_capped_at_100(self):
        measurement = measure_processing(
            "slow", lambda update: sum(range(100)), list(range(10))
        )
        assert measurement.utilization(1e12) == 100.0

    def test_heavier_work_costs_more(self):
        light = measure_processing("light", lambda u: None,
                                   list(range(2000)))
        heavy = measure_processing("heavy", lambda u: sum(range(200)),
                                   list(range(2000)))
        assert heavy.seconds_per_update > light.seconds_per_update


class TestThroughputModel:
    def test_capacity_limited_at_low_rtt(self):
        bw = estimate_tcp_throughput(0.001, 0.0, 1e9)
        assert bw == pytest.approx(0.95e9)

    def test_loss_limits_throughput(self):
        clean = estimate_tcp_throughput(0.05, 1e-5, 1e9)
        lossy = estimate_tcp_throughput(0.05, 1e-2, 1e9)
        assert lossy < clean

    def test_rtt_limits_throughput(self):
        near = estimate_tcp_throughput(0.01, 1e-3, 1e9)
        far = estimate_tcp_throughput(0.1, 1e-3, 1e9)
        assert far < near
        assert near == pytest.approx(10 * far, rel=0.01)

    def test_invalid_rtt(self):
        with pytest.raises(ValueError):
            estimate_tcp_throughput(0.0, 0.0, 1e9)
