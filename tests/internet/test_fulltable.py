"""Tests for the seeded full-table workload generator (§6g)."""

from repro.bgp.messages import MAX_MESSAGE_SIZE, UpdateMessage
from repro.internet.fulltable import (
    DFZ_PROFILE,
    FullTableGenerator,
    FullTableProfile,
    _EXCLUDED_FIRST_OCTETS,
)


def make(count=3000, seed=7):
    return FullTableGenerator(prefix_count=count, seed=seed)


def test_deterministic_for_a_seed():
    a, b = make(), make()
    assert a.prefixes == b.prefixes
    assert a.origin_attributes == b.origin_attributes
    assert [u.encode() for u in a.table_updates()] == \
        [u.encode() for u in b.table_updates()]
    assert [u.encode() for u in a.churn(200)] == \
        [u.encode() for u in b.churn(200)]


def test_prefix_count_and_uniqueness():
    generator = make()
    assert len(generator.prefixes) == 3000
    assert len({prefix.key() for prefix in generator.prefixes}) == 3000


def test_cidr_distribution_tracks_profile():
    generator = make(count=20000)
    lengths = [prefix.length for prefix in generator.prefixes]
    share_24 = lengths.count(24) / len(lengths)
    weight_24 = dict(DFZ_PROFILE.cidr_weights)[24]
    total = sum(weight for _, weight in DFZ_PROFILE.cidr_weights)
    assert abs(share_24 - weight_24 / total) < 0.02  # /24 dominates


def test_reserved_and_experiment_space_excluded():
    generator = make(count=20000)
    for prefix in generator.prefixes:
        assert (prefix.network.value >> 24) not in _EXCLUDED_FIRST_OCTETS


def test_attributes_shared_per_origin():
    generator = make()
    distinct = {id(generator.attributes_for(i)) for i in range(3000)}
    # Zipf-ish popularity: far fewer attribute objects than prefixes.
    assert len(distinct) <= len(generator.origin_attributes)
    assert len(distinct) < 3000 / 5


def test_table_updates_cover_table_and_fit_ceiling():
    generator = make()
    seen = set()
    for update in generator.table_updates():
        assert len(update.encode()) <= MAX_MESSAGE_SIZE
        for prefix, path_id in update.nlri:
            assert path_id is None
            seen.add(prefix.key())
    assert len(seen) == 3000


def test_table_updates_are_fresh_objects_each_call():
    generator = make()
    first = list(generator.table_updates())
    second = list(generator.table_updates())
    assert first[0] is not second[0]  # no wire-cache leakage across legs
    assert first[0].encode() == second[0].encode()


def test_churn_mixes_withdrawals_and_flaps():
    generator = make()
    list(generator.table_updates())
    events = list(generator.churn(1000))
    withdraws = [u for u in events if u.withdrawn]
    announces = [u for u in events if u.nlri]
    assert len(withdraws) + len(announces) == 1000
    fraction = len(withdraws) / 1000
    assert 0.05 < fraction < DFZ_PROFILE.withdraw_fraction + 0.1
    table = {prefix.key() for prefix in generator.prefixes}
    for update in events:
        for prefix, _ in list(update.withdrawn) + list(update.nlri):
            assert prefix.key() in table  # churn stays on the loaded table


def test_custom_profile_is_respected():
    profile = FullTableProfile(
        name="flat", cidr_weights=((20, 1.0),), prefixes_per_origin=10,
    )
    generator = FullTableGenerator(
        profile=profile, prefix_count=500, seed=3)
    assert all(prefix.length == 20 for prefix in generator.prefixes)
    assert len(generator.origin_attributes) == 50
