"""Synthetic-Internet tests: topology, Gao–Rexford invariants, overlay
forwarding, route servers, PeeringDB, churn, looking glass."""


from repro.internet import (
    AMSIX_PROFILE,
    ChurnGenerator,
    NetworkType,
    classify_peers,
    synthesize_records,
)
from repro.internet.asnode import (
    InternetAS,
    Relationship,
    TAG_CUSTOMER,
    TAG_PEER,
    TAG_PROVIDER,
)
from repro.internet.overlay import AsOverlay
from repro.netsim.addr import IPv4Prefix
from repro.netsim.frames import IcmpMessage, IcmpType, IpProto, IPv4Packet
from repro.sim import Scheduler


def make_as(scheduler, overlay, asn, prefix):
    node = InternetAS(scheduler, overlay, asn=asn, name=f"as{asn}",
                      prefixes=(IPv4Prefix.parse(prefix),))
    node.originate_all()
    return node


class TestGaoRexford:
    def build_triangle(self, scheduler):
        """provider ← customer → second provider; providers peer."""
        overlay = AsOverlay(scheduler)
        p1 = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        p2 = make_as(scheduler, overlay, 200, "32.1.0.0/16")
        customer = make_as(scheduler, overlay, 300, "32.2.0.0/16")
        p1.peer_with(p2, Relationship.PEER)
        customer.peer_with(p1, Relationship.PROVIDER)
        customer.peer_with(p2, Relationship.PROVIDER)
        scheduler.run_for(5)
        return p1, p2, customer

    def test_customer_routes_exported_to_peers(self, scheduler):
        p1, p2, customer = self.build_triangle(scheduler)
        # p2 hears customer's prefix from p1 (customer route → peer OK)
        # and directly; both are fine.
        assert p2.speaker.best_route(customer.prefixes[0]) is not None

    def test_peer_routes_not_exported_to_peers(self, scheduler):
        scheduler2 = Scheduler()
        overlay = AsOverlay(scheduler2)
        a = make_as(scheduler2, overlay, 100, "32.0.0.0/16")
        b = make_as(scheduler2, overlay, 200, "32.1.0.0/16")
        c = make_as(scheduler2, overlay, 300, "32.2.0.0/16")
        # a–b peers, b–c peers: a must NOT learn c's prefix via b.
        a.peer_with(b, Relationship.PEER)
        b.peer_with(c, Relationship.PEER)
        scheduler2.run_for(5)
        assert b.speaker.best_route(c.prefixes[0]) is not None
        assert a.speaker.best_route(c.prefixes[0]) is None

    def test_provider_routes_not_exported_to_providers(self, scheduler):
        overlay = AsOverlay(scheduler)
        top = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        mid = make_as(scheduler, overlay, 200, "32.1.0.0/16")
        bottom = make_as(scheduler, overlay, 300, "32.2.0.0/16")
        mid.peer_with(top, Relationship.PROVIDER)
        bottom.peer_with(mid, Relationship.PROVIDER)
        scheduler.run_for(5)
        # bottom must not see top's prefix re-exported *by bottom* — but it
        # does learn it from its provider (providers export everything to
        # customers).
        assert bottom.speaker.best_route(top.prefixes[0]) is not None
        # top must not learn bottom... it does: bottom→mid (customer route)
        # →top (customer route): valley-free allows it.
        assert top.speaker.best_route(bottom.prefixes[0]) is not None

    def test_customer_route_preferred_over_peer(self, scheduler):
        overlay = AsOverlay(scheduler)
        hub = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        target = make_as(scheduler, overlay, 400, "32.3.0.0/16")
        # hub hears target's prefix both from a peer and from a customer.
        hub.peer_with(target, Relationship.PEER)
        middle = make_as(scheduler, overlay, 500, "32.4.0.0/16")
        hub.peer_with(middle, Relationship.CUSTOMER)
        middle.peer_with(target, Relationship.CUSTOMER)
        scheduler.run_for(5)
        best = hub.speaker.best_route(target.prefixes[0])
        assert best is not None
        # Customer route (via 500) wins despite the longer AS path.
        assert best.as_path.first_as == 500

    def test_tags_stripped_on_export(self, scheduler):
        overlay = AsOverlay(scheduler)
        a = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        b = make_as(scheduler, overlay, 200, "32.1.0.0/16")
        a.peer_with(b, Relationship.PEER)
        scheduler.run_for(5)
        best = b.speaker.best_route(a.prefixes[0])
        assert best is not None
        # Internal relationship tags never leak... the *import* side adds
        # its own tag; no foreign tags beyond that one.
        tags = {TAG_CUSTOMER, TAG_PEER, TAG_PROVIDER} & best.communities
        assert tags == {TAG_PEER}


class TestOverlayForwarding:
    def test_ping_across_three_ases(self, scheduler):
        overlay = AsOverlay(scheduler)
        a = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        b = make_as(scheduler, overlay, 200, "32.1.0.0/16")
        c = make_as(scheduler, overlay, 300, "32.2.0.0/16")
        b.peer_with(a, Relationship.CUSTOMER)
        b.peer_with(c, Relationship.CUSTOMER)
        scheduler.run_for(5)
        probe = IPv4Packet(
            src=a.prefixes[0].address_at(1),
            dst=c.prefixes[0].address_at(1),
            proto=IpProto.ICMP,
            payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
        )
        a.receive_packet(probe)
        scheduler.run_for(5)
        # a receives the reply addressed to its own prefix (counted).
        assert a.packets_received >= 2
        assert c.packets_received == 1

    def test_ttl_exceeded_generated(self, scheduler):
        overlay = AsOverlay(scheduler)
        a = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        b = make_as(scheduler, overlay, 200, "32.1.0.0/16")
        c = make_as(scheduler, overlay, 300, "32.2.0.0/16")
        b.peer_with(a, Relationship.CUSTOMER)
        b.peer_with(c, Relationship.CUSTOMER)
        scheduler.run_for(5)
        probe = IPv4Packet(
            src=a.prefixes[0].address_at(1),
            dst=c.prefixes[0].address_at(1),
            proto=IpProto.ICMP, ttl=1,
            payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
        )
        a.forward(probe)  # hand straight to the overlay toward b
        scheduler.run_for(5)
        assert c.packets_received == 0  # expired at b

    def test_no_route_drops(self, scheduler):
        overlay = AsOverlay(scheduler)
        a = make_as(scheduler, overlay, 100, "32.0.0.0/16")
        probe = IPv4Packet(
            src=a.prefixes[0].address_at(1),
            dst=IPv4Prefix.parse("99.0.0.0/16").address_at(1),
            proto=IpProto.ICMP,
            payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
        )
        a.receive_packet(probe)
        scheduler.run_for(2)
        assert a.packets_dropped == 1


class TestBuildInternet:
    def test_world_converges(self, small_world):
        scheduler, platform, internet = small_world
        # Every stub's prefix is reachable from every tier1.
        for stub in internet.stubs:
            for tier1 in internet.tier1s:
                assert tier1.speaker.best_route(stub.prefixes[0]) is not None

    def test_platform_attachments(self, small_world):
        scheduler, platform, internet = small_world
        for pop in platform.pops.values():
            if pop.config.kind == "university":
                kinds = {n.kind for n in pop.node.upstreams.values()}
                assert kinds == {"transit"}
            else:
                assert f"rs-{pop.name}" in pop.node.upstreams

    def test_bilateral_and_rs_peers_recorded(self, small_world):
        scheduler, platform, internet = small_world
        assert internet.bilateral_peers or internet.rs_only_peers

    def test_vbgp_learns_routes_from_route_server(self, small_world):
        scheduler, platform, internet = small_world
        pop = platform.pops["ix-c"]
        rs_neighbor = pop.node.upstreams["rs-ix-c"]
        assert len(rs_neighbor.rib) > 0
        # RS routes keep members' next hops (transparent).
        next_hops = {
            str(route.next_hop) for route in rs_neighbor.rib.values()
        }
        assert all(nh.startswith("100.66.") for nh in next_hops)


class TestPeeringDb:
    def test_distribution_matches_section_4_2(self):
        records = synthesize_records(range(1, 2001))
        mix = classify_peers(records, records.keys())
        assert abs(mix[NetworkType.TRANSIT] - 0.33) < 0.05
        assert abs(mix[NetworkType.CABLE_DSL_ISP] - 0.28) < 0.05
        assert abs(mix[NetworkType.CONTENT] - 0.23) < 0.05

    def test_deterministic_by_seed(self):
        a = synthesize_records(range(100), seed=1)
        b = synthesize_records(range(100), seed=1)
        assert a == b

    def test_classification_of_unknown_asn(self):
        mix = classify_peers({}, [99])
        assert mix[NetworkType.UNCLASSIFIED] == 1.0


class TestChurn:
    def test_mean_rate_calibrated(self):
        """§6: AMS-IX averaged 21.8 updates/s."""
        assert abs(AMSIX_PROFILE.mean_rate() - 21.8) < 1.0

    def test_p99_calibrated(self):
        generator = ChurnGenerator(AMSIX_PROFILE, seed=3)
        rates = sorted(generator.second_rates(5000))
        p99 = rates[int(len(rates) * 0.99)]
        assert 250 <= p99 <= 450

    def test_updates_decode_and_replay(self):
        generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=100)
        updates = generator.make_updates(500)
        announces = [u for u in updates if u.nlri]
        withdraws = [u for u in updates if u.withdrawn]
        assert announces and withdraws
        for update in announces[:50]:
            assert update.attributes.next_hop is not None
            data = update.encode()
            assert len(data) > 19

    def test_replay_feeds_processor(self):
        generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=50, seed=5)
        seen = []
        rates = generator.replay(seconds=20, process=seen.append)
        assert len(seen) == sum(rates)


def test_looking_glass_restricted_interface(scheduler):
    from repro.internet.looking_glass import LookingGlass

    overlay = AsOverlay(scheduler)
    a = make_as(scheduler, overlay, 100, "32.0.0.0/16")
    glass = LookingGlass(scheduler)
    glass.peer_with(a)
    scheduler.run_for(5)
    output = glass.show_route_for(a.prefixes[0])
    assert "from AS100" in output
    assert "Network not in table" in glass.show_route_for(
        IPv4Prefix.parse("9.0.0.0/8")
    )
    assert glass.visible_paths(a.prefixes[0]) == {(100,)}
