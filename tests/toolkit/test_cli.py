"""Toolkit CLI tests (the Table 1 command surface)."""

import pytest

from repro.toolkit import ExperimentClient, ToolkitCli
from tests.conftest import approve_experiment


@pytest.fixture
def cli(small_world):
    scheduler, platform, internet = small_world
    approve_experiment(platform, "exp")
    client = ExperimentClient(scheduler, "exp", platform)
    return scheduler, client, ToolkitCli(client)


def test_usage_on_empty(cli):
    _s, _c, toolkit = cli
    assert "usage" in toolkit.run("")
    assert "usage" in toolkit.run("peering")
    assert "usage" in toolkit.run("peering bogus")


def test_openvpn_lifecycle(cli):
    scheduler, client, toolkit = cli
    out = toolkit.run("peering openvpn up uni-a")
    assert "tunnel to uni-a up" in out
    status = toolkit.run("peering openvpn status")
    assert "uni-a: up" in status
    out = toolkit.run("peering openvpn down uni-a")
    assert "down" in out


def test_bgp_lifecycle(cli):
    scheduler, client, toolkit = cli
    toolkit.run("peering openvpn up uni-a")
    out = toolkit.run("peering bgp start uni-a")
    assert "bgp to uni-a" in out
    scheduler.run_for(5)
    assert "uni-a: established" in toolkit.run("peering bgp status")
    assert "stopped" in toolkit.run("peering bgp stop uni-a")


def test_bird_cli_passthrough(cli):
    scheduler, client, toolkit = cli
    toolkit.run("peering openvpn up uni-a")
    toolkit.run("peering bgp start uni-a")
    scheduler.run_for(5)
    assert "127.65." in toolkit.run("peering bird uni-a show route")


def test_prefix_announce_and_withdraw(cli):
    scheduler, client, toolkit = cli
    toolkit.run("peering openvpn up uni-a")
    toolkit.run("peering bgp start uni-a")
    scheduler.run_for(5)
    prefix = str(client.profile.prefixes[0])
    out = toolkit.run(f"peering prefix announce {prefix}")
    assert "announced" in out
    out = toolkit.run(f"peering prefix withdraw {prefix}")
    assert "withdrew" in out


def test_announce_options_parsed(cli):
    scheduler, client, toolkit = cli
    toolkit.run("peering openvpn up uni-a")
    toolkit.run("peering openvpn up uni-b")
    toolkit.run("peering bgp start uni-a")
    toolkit.run("peering bgp start uni-b")
    scheduler.run_for(5)
    prefix = str(client.profile.prefixes[0])
    out = toolkit.run(
        f"peering prefix announce {prefix} -m uni-a -p 2 -c 47065:3"
    )
    assert "to uni-a" in out
    assert "1 update(s)" in out
    announced = client.pops["uni-a"].announced[client.profile.prefixes[0]]
    assert announced.as_path.length == 2
    assert prefix not in [str(p) for p in client.pops["uni-b"].announced]


def test_poison_option(cli):
    scheduler, client, toolkit = cli
    toolkit.run("peering openvpn up uni-a")
    toolkit.run("peering bgp start uni-a")
    scheduler.run_for(5)
    prefix = str(client.profile.prefixes[0])
    toolkit.run(f"peering prefix announce {prefix} -m uni-a -x 3356")
    announced = client.pops["uni-a"].announced[client.profile.prefixes[0]]
    assert 3356 in announced.as_path.asns


def test_missing_prefix_error(cli):
    _s, _c, toolkit = cli
    assert "error" in toolkit.run("peering prefix announce -m uni-a")


def test_errors_are_reported_not_raised(cli):
    _s, _c, toolkit = cli
    out = toolkit.run("peering openvpn up nonexistent-pop")
    assert out.startswith("error:")


def test_bgp_refresh_command(cli):
    scheduler, client, toolkit = cli
    toolkit.run("peering openvpn up uni-a")
    toolkit.run("peering bgp start uni-a")
    scheduler.run_for(5)
    view = client.pops["uni-a"]
    view.routes.clear()
    out = toolkit.run("peering bgp refresh uni-a")
    assert "route refresh sent" in out
    scheduler.run_for(5)
    assert view.routes
