"""``peering fleet``: the CLI face of the fleet subsystem."""

import pytest

from repro.fleet import live_fleet_process_count
from repro.toolkit import ExperimentClient, ToolkitCli
from tests.conftest import approve_experiment


@pytest.fixture
def cli(small_world):
    scheduler, platform, _internet = small_world
    approve_experiment(platform, "exp")
    client = ExperimentClient(scheduler, "exp", platform)
    return ToolkitCli(client)


def test_fleet_usage_errors(cli):
    assert cli.run_with_status("peering fleet")[1] == 2
    assert cli.run_with_status("peering fleet compile")[1] == 2
    assert cli.run_with_status("peering fleet up")[1] == 2
    assert cli.run_with_status("peering fleet run-pop")[1] == 2
    assert cli.run_with_status("peering fleet compile --pops")[1] == 2


def test_fleet_compile_lists_artifacts(cli, tmp_path):
    out, code = cli.run_with_status(
        f"peering fleet compile --dir {tmp_path} --pops 2 "
        "--port-base 25300")
    assert code == 0
    assert "compiled world demo" in out
    assert "pop-pop0.json" in out and "pop-pop1.json" in out
    assert (tmp_path / "world.json").exists()


def test_fleet_up_status_down_lifecycle(cli, tmp_path):
    cli.run(f"peering fleet compile --dir {tmp_path} --pops 2 "
            "--port-base 25340")
    out, code = cli.run_with_status(f"peering fleet up --dir {tmp_path}")
    assert code == 0
    assert "pop0: up" in out and "pop1: up" in out
    out, code = cli.run_with_status(
        f"peering fleet status --dir {tmp_path}")
    assert code == 0
    assert "pop0: running" in out and "pop1: running" in out
    out, code = cli.run_with_status(f"peering fleet down --dir {tmp_path}")
    assert code == 0
    assert "pop0: stopped" in out
    assert live_fleet_process_count() == 0


@pytest.mark.slow
def test_fleet_differential_via_cli(cli):
    out, code = cli.run_with_status(
        "peering fleet differential --pops 2 --updates 6 "
        "--port-base 25400")
    assert code == 0, out
    assert "fleet differential" in out and "OK" in out


@pytest.mark.slow
def test_fleet_crash_via_cli(cli):
    out, code = cli.run_with_status(
        "peering fleet crash --seed 0 --port-base 25460")
    assert code == 0, out
    assert "fleet-pop-crash" in out and "CONVERGED" in out
