"""Experiment-client tests over the small converged world."""

import pytest



def test_tunnels_and_sessions_up(connected_client):
    scheduler, platform, internet, client = connected_client
    status = client.openvpn_status()
    assert set(status) == set(platform.pops)
    assert all(entry["up"] for entry in status.values())
    assert all(state == "established"
               for state in client.bird_status().values())


def test_addpath_visibility_of_all_routes(connected_client):
    """Experiments see every neighbor's route, not just the best."""
    scheduler, platform, internet, client = connected_client
    dst = internet.tier1s[0].prefixes[0]
    for pop_name in platform.pops:
        assert client.routes(dst, pop_name)
    # Somewhere the experiment must see multiple alternatives for one
    # prefix (the whole point of ADD-PATH fan-out): distinct next hops.
    multi = [
        prefix
        for view in client.pops.values()
        for prefix in {r.prefix for r in view.routes.values()}
        if len({
            r.next_hop.value for r in view.routes.values()
            if r.prefix == prefix
        }) >= 2
    ]
    assert multi


def test_routes_have_virtual_next_hops(connected_client):
    scheduler, platform, internet, client = connected_client
    view = client.pops["uni-a"]
    assert view.routes
    for route in view.routes.values():
        assert str(route.next_hop).startswith("127.65.")


def test_announce_reaches_internet(connected_client):
    scheduler, platform, internet, client = connected_client
    prefix = client.profile.prefixes[0]
    client.announce(prefix)
    scheduler.run_for(20)
    transit = internet.transits[0]
    assert transit.speaker.best_route(prefix) is not None


def test_withdraw_removes_from_internet(connected_client):
    scheduler, platform, internet, client = connected_client
    prefix = client.profile.prefixes[0]
    client.announce(prefix)
    scheduler.run_for(20)
    client.withdraw(prefix)
    scheduler.run_for(20)
    transit = internet.transits[0]
    assert transit.speaker.best_route(prefix) is None


def test_announce_to_single_pop(connected_client):
    scheduler, platform, internet, client = connected_client
    prefix = client.profile.prefixes[0]
    sent = client.announce(prefix, pops=["uni-a"])
    assert len(sent) == 1
    scheduler.run_for(10)
    assert prefix in client.pops["uni-a"].announced
    assert prefix not in client.pops["uni-b"].announced


def test_prepend_visible_in_internet(connected_client):
    scheduler, platform, internet, client = connected_client
    prefix = client.profile.prefixes[0]
    client.announce(prefix, prepend=3)
    scheduler.run_for(20)
    transit = internet.transits[0]
    best = transit.speaker.best_route(prefix)
    assert best is not None
    # 3 client prepends (platform ASN) + mux prepend.
    assert best.as_path.asns.count(47065) >= 4


def test_end_to_end_ping(connected_client):
    scheduler, platform, internet, client = connected_client
    prefix = client.profile.prefixes[0]
    client.announce(prefix)
    scheduler.run_for(20)
    dst = internet.tier1s[0].prefixes[0].address_at(1)
    routes = client.lookup(dst, "uni-a")
    assert routes
    client.ping("uni-a", routes[0], dst)
    scheduler.run_for(15)
    replies = client.received_icmp()
    assert any(str(p.src) == str(dst) for p, _m in replies)


def test_ping_via_chosen_neighbor_attributed(connected_client):
    """Per-packet egress selection: replies return and ingress frames
    carry the delivering neighbor's virtual MAC."""
    scheduler, platform, internet, client = connected_client
    prefix = client.profile.prefixes[0]
    client.announce(prefix)
    scheduler.run_for(20)
    dst = internet.tier1s[0].prefixes[0].address_at(7)
    routes = client.lookup(dst, "uni-a")
    client.ping("uni-a", routes[0], dst)
    scheduler.run_for(15)
    assert client.delivered
    _packet, smac, _iface = client.delivered[-1]
    assert (smac.value >> 16) == 0x027F0000  # a virtual neighbor MAC


def test_bird_stop_clears_routes(connected_client):
    scheduler, platform, internet, client = connected_client
    assert client.pops["uni-a"].routes
    client.bird_stop("uni-a")
    scheduler.run_for(5)
    assert client.bird_status()["uni-a"] == "down"
    assert not client.pops["uni-a"].routes


def test_bird_cli_output(connected_client):
    scheduler, platform, internet, client = connected_client
    output = client.bird_cli("uni-a", "show route")
    assert "via 127.65." in output
    assert "established" in client.bird_cli("uni-a", "show protocols")


def test_announce_requires_session(connected_client):
    scheduler, platform, internet, client = connected_client
    client.bird_stop("uni-a")
    scheduler.run_for(2)
    with pytest.raises(RuntimeError):
        client.announce(client.profile.prefixes[0], pops=["uni-a"])
