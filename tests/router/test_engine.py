"""Router engine tests: kernel sync, CLI, non-disruptive reconfiguration."""

import pytest

from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Port
from repro.netsim.stack import NetworkStack
from repro.router import Router, birdc, parse_config

CONFIG = """
router id 10.0.0.1;
local as 47065;

filter nothing { reject; }

protocol kernel main4 { table 254; export all; }

protocol bgp up0 {
    neighbor 10.0.0.2 as 3356;
    local address 10.0.0.1;
    import all;
    export all;
}
"""


def build_router(scheduler, config_text=CONFIG):
    stack = NetworkStack(scheduler, "router-host")
    stack.add_interface("eth0", MacAddress(0x02_01), Port())
    stack.add_address("eth0", IPv4Address.parse("10.0.0.1"), 24)
    router = Router(scheduler, parse_config(config_text), stack=stack)
    return router, stack


def build_peer(scheduler, asn=3356):
    return BgpSpeaker(
        scheduler,
        SpeakerConfig(asn=asn, router_id=IPv4Address.parse("10.0.0.2")),
    )


def wire(scheduler, router, peer, protocol="up0", peer_name="to-router"):
    ours, theirs = connect_pair(scheduler, rtt=0.02)
    router.connect_protocol(protocol, ours)
    peer.attach_neighbor(
        NeighborConfig(name=peer_name, peer_asn=router.config.asn,
                       local_address=IPv4Address.parse("10.0.0.2")),
        theirs,
    )


def test_session_establishes_and_routes_sync_to_kernel(scheduler):
    router, stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    peer.originate(local_route(IPv4Prefix.parse("99.0.0.0/8"),
                               next_hop=IPv4Address.parse("10.0.0.2")))
    scheduler.run_for(2)
    entry = stack.tables[254].lookup(IPv4Address.parse("99.1.2.3"))
    assert entry is not None
    assert str(entry.value.next_hop) == "10.0.0.2"
    assert router.kernel_syncs["main4"].installed == 1


def test_kernel_removes_on_withdraw(scheduler):
    router, stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    prefix = IPv4Prefix.parse("99.0.0.0/8")
    peer.originate(local_route(prefix,
                               next_hop=IPv4Address.parse("10.0.0.2")))
    scheduler.run_for(2)
    peer.withdraw(prefix)
    scheduler.run_for(2)
    assert stack.tables[254].lookup(IPv4Address.parse("99.1.2.3")) is None


def test_cli_show_protocols_and_route(scheduler):
    router, _stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    peer.originate(local_route(IPv4Prefix.parse("99.0.0.0/8"),
                               next_hop=IPv4Address.parse("10.0.0.2")))
    scheduler.run_for(2)
    protocols = birdc(router, "show protocols")
    assert "up0" in protocols and "established" in protocols
    routes = birdc(router, "show route")
    assert "99.0.0.0/8" in routes
    assert "Network not found" in birdc(router, "show route for 1.0.0.0/8")
    assert "47065" in birdc(router, "show status")
    assert "routes" in birdc(router, "show memory")


def test_reconfigure_keeps_unchanged_session(scheduler):
    router, _stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    scheduler.run_for(1)
    assert router.speaker.neighbors["up0"].established
    new_config = parse_config(CONFIG.replace("import all", "import all")
                              + "\nprotocol bgp up1 {"
                                " neighbor 10.0.0.3 as 174; }")
    report = router.reconfigure(new_config)
    assert report.sessions_kept == ["up0"]
    assert report.protocols_added == ["up1"]
    assert not report.disruptive
    scheduler.run_for(1)
    assert router.speaker.neighbors["up0"].established


def test_reconfigure_resets_changed_identity(scheduler):
    router, _stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    scheduler.run_for(1)
    new_config = parse_config(CONFIG.replace("as 3356", "as 174"))
    report = router.reconfigure(new_config)
    assert report.sessions_reset == ["up0"]
    assert report.disruptive
    scheduler.run_for(1)
    assert "up0" not in router.speaker.neighbors


def test_reconfigure_removes_deleted_protocol(scheduler):
    router, _stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    scheduler.run_for(1)
    without_bgp = parse_config("""
router id 10.0.0.1;
local as 47065;
protocol kernel main4 { table 254; export all; }
""")
    report = router.reconfigure(without_bgp)
    assert report.protocols_removed == ["up0"]
    scheduler.run_for(1)
    assert "up0" not in router.speaker.neighbors


def test_reconfigure_swaps_filters_live(scheduler):
    router, _stack = build_router(scheduler)
    peer = build_peer(scheduler)
    wire(scheduler, router, peer)
    scheduler.run_for(1)
    filtered = parse_config(
        CONFIG.replace("import all;", "import filter nothing;")
    )
    report = router.reconfigure(filtered)
    assert report.sessions_kept == ["up0"]
    assert "up0" in report.filters_updated
    # New routes are now rejected, session intact.
    peer.originate(local_route(IPv4Prefix.parse("99.0.0.0/8"),
                               next_hop=IPv4Address.parse("10.0.0.2")))
    scheduler.run_for(2)
    assert router.best_route(IPv4Prefix.parse("99.0.0.0/8")) is None
    assert router.speaker.neighbors["up0"].established


def test_identity_change_rejected(scheduler):
    router, _stack = build_router(scheduler)
    other = parse_config(CONFIG.replace("local as 47065", "local as 1"))
    with pytest.raises(ValueError):
        router.reconfigure(other)


def test_connect_unknown_protocol(scheduler):
    router, _stack = build_router(scheduler)
    with pytest.raises(KeyError):
        router.connect_protocol("nope", connect_pair(scheduler)[0])
