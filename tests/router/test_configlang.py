"""Configuration-language parser tests."""

import pytest

from repro.bgp.attributes import Community, originate
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.router import ConfigSyntaxError, parse_config

NH = IPv4Address.parse("1.1.1.1")

BASE = """
router id 10.0.0.1;
local as 47065;
"""


def test_minimal_config():
    config = parse_config(BASE)
    assert config.asn == 47065
    assert str(config.router_id) == "10.0.0.1"
    assert config.hold_time == 90


def test_hold_time_and_mrai():
    config = parse_config(BASE + "hold time 30;\nmrai 5.0;")
    assert config.hold_time == 30
    assert config.mrai == 5.0


def test_missing_router_id():
    with pytest.raises(ConfigSyntaxError):
        parse_config("local as 1;")


def test_missing_local_as():
    with pytest.raises(ConfigSyntaxError):
        parse_config("router id 1.1.1.1;")


def test_comments_ignored():
    config = parse_config(BASE + "# a comment\nhold time 10; # trailing\n")
    assert config.hold_time == 10


def test_kernel_protocol():
    config = parse_config(BASE + """
protocol kernel k1 { table 100; export all; }
protocol kernel k2 { export none; }
""")
    assert config.kernel_protocols["k1"].table == 100
    assert config.kernel_protocols["k2"].export is False


def test_bgp_protocol_options():
    config = parse_config(BASE + """
protocol bgp up0 {
    neighbor 10.0.0.2 as 3356;
    local address 10.0.0.1;
    add paths on;
    transparent on;
    ibgp off;
    next hop self off;
    import all;
    export none;
    max prefixes 1000;
}
""")
    protocol = config.bgp_protocols["up0"]
    assert protocol.peer_asn == 3356
    assert protocol.addpath and protocol.transparent
    assert not protocol.is_ibgp and not protocol.next_hop_self
    assert protocol.reject_export and not protocol.reject_import
    assert protocol.max_prefixes == 1000


def test_bgp_neighbor_as_any():
    config = parse_config(BASE + """
protocol bgp rs { neighbor 10.0.0.9 as any; }
""")
    assert config.bgp_protocols["rs"].peer_asn is None


def test_filter_prefix_accept_reject():
    config = parse_config(BASE + """
filter f {
    if net ~ 184.164.224.0/23+ then accept;
    reject;
}
""")
    route_map = config.filters["f"].route_map
    ok = originate(IPv4Prefix.parse("184.164.224.0/24"), 1, NH)
    bad = originate(IPv4Prefix.parse("10.0.0.0/24"), 1, NH)
    assert route_map.apply(ok) is not None
    assert route_map.apply(bad) is None


def test_filter_exact_prefix_match():
    config = parse_config(BASE + """
filter f { if net ~ 10.0.0.0/8- then accept; reject; }
""")
    route_map = config.filters["f"].route_map
    assert route_map.apply(originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH))
    assert route_map.apply(
        originate(IPv4Prefix.parse("10.1.0.0/16"), 1, NH)
    ) is None


def test_filter_community_match_and_action():
    config = parse_config(BASE + """
filter f {
    if community ~ (47065,100) then { prepend 47065 times 3; accept; }
    reject;
}
""")
    route_map = config.filters["f"].route_map
    tagged = originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH,
                       communities=(Community(47065, 100),))
    out = route_map.apply(tagged)
    assert out is not None
    assert out.as_path.asns[:3] == (47065, 47065, 47065)
    assert route_map.apply(originate(IPv4Prefix.parse("10.0.0.0/8"), 1,
                                     NH)) is None


def test_filter_aspath_conditions():
    config = parse_config(BASE + """
filter f {
    if aspath ~ 666 then reject;
    if aspath.len > 4 then reject;
    accept;
}
""")
    route_map = config.filters["f"].route_map
    assert route_map.apply(
        originate(IPv4Prefix.parse("10.0.0.0/8"), 666, NH)
    ) is None
    long_path = originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH).prepended(
        2, 5
    )
    assert route_map.apply(long_path) is None
    assert route_map.apply(
        originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH)
    ) is not None


def test_filter_unknown_attrs_condition():
    from repro.bgp.attributes import UnknownAttribute

    config = parse_config(BASE + """
filter f { if unknown_attrs then reject; accept; }
""")
    route_map = config.filters["f"].route_map
    plain = originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH)
    weird = plain.with_attributes(unknown=(
        UnknownAttribute(type_code=99, flags=0xC0, value=b"x"),
    ))
    assert route_map.apply(plain) is not None
    assert route_map.apply(weird) is None


def test_filter_unconditional_actions():
    config = parse_config(BASE + """
filter f {
    set localpref 200;
    add community (47065,1);
    accept;
}
""")
    out = config.filters["f"].route_map.apply(
        originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH)
    )
    assert out.attributes.local_pref == 200
    assert Community(47065, 1) in out.communities


def test_filter_default_reject_when_no_terminator():
    config = parse_config(BASE + "filter f { set localpref 1; }")
    # BIRD filters reject if they fall off the end.
    out = config.filters["f"].route_map.apply(
        originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH)
    )
    assert out is None


def test_strip_statements():
    config = parse_config(BASE + """
filter f { strip communities; strip unknown; accept; }
""")
    tagged = originate(IPv4Prefix.parse("10.0.0.0/8"), 1, NH,
                       communities=(Community(1, 1),))
    out = config.filters["f"].route_map.apply(tagged)
    assert out.communities == frozenset()


def test_unknown_statement_rejected():
    with pytest.raises(ConfigSyntaxError):
        parse_config(BASE + "filter f { frobnicate; }")


def test_unknown_protocol_kind_rejected():
    with pytest.raises(ConfigSyntaxError):
        parse_config(BASE + "protocol ospf x { }")


def test_unterminated_filter_rejected():
    with pytest.raises(ConfigSyntaxError):
        parse_config(BASE + "filter f { accept;")
