"""Unit tests for the seeded fault injectors."""

from repro.bgp.transport import connect_pair
from repro.chaos import ChannelFaultInjector, LinkFaultInjector
from repro.netsim.link import Link, Port
from repro.sim import Scheduler


def collecting_pair(scheduler):
    a, b = connect_pair(scheduler, rtt=0.02)
    received = []
    b.on_data = received.append
    return a, b, received


def test_drop_one_blocks_everything_and_heal_restores():
    scheduler = Scheduler()
    a, b, received = collecting_pair(scheduler)
    injector = ChannelFaultInjector(scheduler, a, seed=1, drop=1.0)
    injector.inject()
    a.send(b"hello")
    scheduler.run_for(1)
    assert received == []
    assert injector.dropped == 1
    injector.heal()
    a.send(b"world")
    scheduler.run_for(1)
    assert received == [b"world"]


def test_inject_heal_are_idempotent():
    scheduler = Scheduler()
    a, b, received = collecting_pair(scheduler)
    injector = ChannelFaultInjector(scheduler, a, seed=1, drop=1.0)
    injector.inject()
    injector.inject()
    injector.heal()
    injector.heal()
    a.send(b"ok")
    scheduler.run_for(1)
    assert received == [b"ok"]


def test_corruption_flips_exactly_one_byte():
    scheduler = Scheduler()
    a, b, received = collecting_pair(scheduler)
    injector = ChannelFaultInjector(scheduler, a, seed=3, corrupt=1.0)
    injector.inject()
    payload = bytes(range(16))
    a.send(payload)
    scheduler.run_for(1)
    assert len(received) == 1
    assert len(received[0]) == len(payload)
    differing = [
        index for index, (x, y) in enumerate(zip(payload, received[0]))
        if x != y
    ]
    assert len(differing) == 1
    assert injector.corrupted == 1


def test_latency_preserves_order():
    scheduler = Scheduler()
    a, b, received = collecting_pair(scheduler)
    injector = ChannelFaultInjector(
        scheduler, a, seed=4, extra_latency=5.0
    )
    injector.inject()
    a.send(b"first")
    a.send(b"second")
    scheduler.run_for(1)
    assert received == []  # still in flight
    scheduler.run_for(10)
    assert received == [b"first", b"second"]


def test_faults_are_seed_deterministic():
    def run(seed):
        scheduler = Scheduler()
        a, b, received = collecting_pair(scheduler)
        injector = ChannelFaultInjector(
            scheduler, a, seed=seed, drop=0.5, label="det"
        )
        injector.inject()
        for index in range(64):
            a.send(bytes([index]))
        scheduler.run_for(1)
        return [chunk[0] for chunk in received]

    assert run(11) == run(11)
    assert run(11) != run(12)


def test_both_ends_are_faulted():
    scheduler = Scheduler()
    a, b = connect_pair(scheduler, rtt=0.02)
    got_a, got_b = [], []
    a.on_data = got_a.append
    b.on_data = got_b.append
    injector = ChannelFaultInjector(scheduler, a, seed=5, drop=1.0)
    injector.inject()
    a.send(b"x")
    b.send(b"y")
    scheduler.run_for(1)
    assert got_a == [] and got_b == []
    assert injector.dropped == 2


def test_link_fault_injector_toggles_loss():
    from repro.netsim.addr import MacAddress
    from repro.netsim.frames import EtherType, EthernetFrame

    def frame(tag):
        return EthernetFrame(
            src=MacAddress(1), dst=MacAddress(2),
            ethertype=EtherType.IPV4, payload=tag,
        )

    scheduler = Scheduler()
    a, b = Port("a"), Port("b")
    delivered = []
    b.attach(lambda received, port: delivered.append(received.payload))
    link = Link(scheduler, a, b, latency=0.001)
    injector = LinkFaultInjector(link, loss=1.0)
    injector.inject()
    a.transmit(frame(b"frame-1"))
    scheduler.run_for(1)
    assert delivered == []
    assert injector.frames_lost == 1
    injector.heal()
    assert link.loss == 0.0
    a.transmit(frame(b"frame-2"))
    scheduler.run_for(1)
    assert delivered == [b"frame-2"]
