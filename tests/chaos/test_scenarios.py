"""ChaosRunner scenarios: every scenario re-converges for every seed.

The CI soak sweeps more seeds; here a representative seed set exercises
every scenario, plus determinism and telemetry checks.
"""

import pytest

from repro.chaos import ChaosRunner, build_chaos_world

SOAK_SEEDS = (0, 1, 2, 3, 4)


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_all_scenarios_reconverge(seed):
    world = build_chaos_world(seed=seed)
    runner = ChaosRunner(world)
    for result in runner.run_all():
        assert result.ok, result.format()
        assert result.convergence_time <= runner.bound


def test_unknown_scenario_is_rejected():
    world = build_chaos_world(seed=0, with_telemetry=False)
    runner = ChaosRunner(world)
    with pytest.raises(KeyError):
        runner.run("meteor-strike")


def test_runs_without_telemetry():
    world = build_chaos_world(seed=0, with_telemetry=False)
    runner = ChaosRunner(world)
    result = runner.run("drop")
    assert result.ok


def _partition_trace(seed):
    world = build_chaos_world(seed=seed)
    runner = ChaosRunner(world)
    result = runner.run("partition")
    supervisor = runner._supervisor(world.neighbors["transit-west"])
    return result, supervisor.schedule


def test_scenarios_are_seed_deterministic():
    result_a, schedule_a = _partition_trace(17)
    result_b, schedule_b = _partition_trace(17)
    assert result_a.ok and result_b.ok
    # Byte-identical backoff schedules and identical outcomes.
    assert repr(schedule_a) == repr(schedule_b)
    assert result_a.details == result_b.details
    assert result_a.convergence_time == result_b.convergence_time
    # A different seed jitters differently.
    _, schedule_c = _partition_trace(18)
    assert repr(schedule_a) != repr(schedule_c)


def test_faults_flow_into_telemetry_station():
    world = build_chaos_world(seed=2)
    runner = ChaosRunner(world)
    result = runner.run("partition")
    assert result.ok
    events = [
        message.event for message in world.telemetry.station.history
        if message.kind == "resilience"
    ]
    assert "fault-inject" in events
    assert "fault-heal" in events
    assert "reconnect" in events  # supervisor activity
    assert "gr-stale" in events   # retention engaged during the outage


def test_flap_scenario_engages_damping():
    world = build_chaos_world(seed=1)
    runner = ChaosRunner(world)
    result = runner.run("flap")
    assert result.ok
    assert result.invariants["flap_damping_engaged"]
    assert result.details["suppressions"] >= 1


def test_shard_kill_heals_to_exact_state():
    """Kill the fan-out shard owning a transit mid-churn; after
    resurrect the platform re-converges and the *full* five-invariant
    catalog holds (ISSUE 5 acceptance criterion)."""
    world = build_chaos_world(seed=3)
    runner = ChaosRunner(world)
    result = runner.run("shard-kill")
    assert result.ok, result.format()
    # The backlog genuinely accumulated on the dead shard and was
    # replayed in full on resurrect.
    assert result.invariants["backlog_accumulated"]
    assert result.invariants["backlog_replayed"]
    assert result.details["backlog"] >= 1
    assert result.details["replayed"] == result.details["backlog"]
    # All five catalog invariants, not just the chaos trio.
    for name in (
        "vmac_bijectivity",
        "addpath_completeness",
        "community_propagation",
        "no_cross_experiment_leakage",
        "kernel_consistency",
    ):
        assert result.invariants[name], result.format()
    # The perf flags were restored after the scenario.
    from repro import perf
    assert perf.FLAGS.shards == 1


def test_shard_kill_in_scenario_catalog():
    assert "shard-kill" in ChaosRunner.SCENARIOS


def test_enforcer_overload_fails_closed():
    world = build_chaos_world(seed=0)
    runner = ChaosRunner(world)
    result = runner.run("enforcer-overload")
    assert result.ok
    assert result.invariants["fail_closed"]
    assert result.invariants["recovered_after_overload"]
