"""Transactional network-controller tests (§5)."""

import pytest

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Port
from repro.netsim.netlink import Netlink, RouteRecord, RuleRecord
from repro.netsim.stack import NetworkStack
from repro.mgmt.controller import (
    NetworkController,
    NetworkIntent,
    TransactionError,
)


def ip(text):
    return IPv4Address.parse(text)


def pfx(text):
    return IPv4Prefix.parse(text)


@pytest.fixture
def setup(scheduler):
    stack = NetworkStack(scheduler, "server")
    stack.add_interface("eth0", MacAddress(0x02_01), Port())
    netlink = Netlink(stack)
    controller = NetworkController(netlink)
    return stack, netlink, controller


def intent(addresses=None, routes=None, rules=None):
    return NetworkIntent(addresses=addresses or {}, routes=routes or [],
                         rules=rules or [])


def test_apply_from_scratch(setup):
    stack, netlink, controller = setup
    report = controller.apply(intent(
        addresses={"eth0": [(ip("10.0.0.1"), 24), (ip("10.0.0.2"), 24)]},
        routes=[RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                            out_iface="eth0", next_hop=None)],
    ))
    assert report.added == 3
    assert [str(a.network) for a in stack.interfaces["eth0"].addresses] == [
        "10.0.0.1", "10.0.0.2",
    ]
    assert netlink.dump_routes(100)


def test_idempotent_second_apply(setup):
    stack, _netlink, controller = setup
    desired = intent(
        addresses={"eth0": [(ip("10.0.0.1"), 24)]},
        routes=[RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                            out_iface="eth0", next_hop=None)],
    )
    controller.apply(desired)
    report = controller.apply(desired)
    assert report.changes == 0
    assert report.kept >= 2


def test_minimal_diff_removes_only_stale(setup):
    stack, netlink, controller = setup
    controller.apply(intent(routes=[
        RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                    out_iface="eth0", next_hop=None),
        RouteRecord(table=100, prefix=pfx("98.0.0.0/8"),
                    out_iface="eth0", next_hop=None),
    ]))
    report = controller.apply(intent(routes=[
        RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                    out_iface="eth0", next_hop=None),
    ]))
    assert report.removed == 1
    assert report.added == 0


def test_changed_route_replaced(setup):
    stack, netlink, controller = setup
    controller.apply(intent(routes=[
        RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                    out_iface="eth0", next_hop=None),
    ]))
    report = controller.apply(intent(routes=[
        RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                    out_iface="eth0", next_hop=ip("10.0.0.9")),
    ]))
    assert report.removed == 1 and report.added == 1
    record = netlink.dump_routes(100)[0]
    assert str(record.next_hop) == "10.0.0.9"


def test_primary_address_reordering(setup):
    """The §5 quirk: the kernel's primary is first-added; the controller
    must remove and re-add to fix the order."""
    stack, netlink, controller = setup
    # Wrong order on the box: .9 added first (primary).
    netlink.add_address("eth0", ip("10.0.0.9"), 24)
    netlink.add_address("eth0", ip("10.0.0.1"), 24)
    report = controller.apply(intent(
        addresses={"eth0": [(ip("10.0.0.1"), 24), (ip("10.0.0.9"), 24)]},
    ))
    assert "eth0" in report.reordered_interfaces
    records = netlink.dump_addresses("eth0")
    assert str(records[0].address) == "10.0.0.1"
    assert records[0].primary


def test_correct_order_not_touched(setup):
    stack, netlink, controller = setup
    netlink.add_address("eth0", ip("10.0.0.1"), 24)
    netlink.add_address("eth0", ip("10.0.0.9"), 24)
    report = controller.apply(intent(
        addresses={"eth0": [(ip("10.0.0.1"), 24), (ip("10.0.0.9"), 24)]},
    ))
    assert report.changes == 0
    assert not report.reordered_interfaces


def test_rules_reconciled_default_kept(setup):
    stack, netlink, controller = setup
    vmac_rule = RuleRecord(priority=100, table=1001, match_iif=None,
                           match_dst=None, match_src=None,
                           match_dmac=MacAddress(0x027F00000001))
    report = controller.apply(intent(rules=[vmac_rule]))
    assert report.added == 1
    rules = netlink.dump_rules()
    assert vmac_rule in rules
    assert any(r.priority == 32766 for r in rules)  # default untouched
    report = controller.apply(intent(rules=[]))
    assert report.removed == 1
    assert any(r.priority == 32766 for r in netlink.dump_rules())


def test_rollback_on_midway_failure(setup):
    stack, netlink, controller = setup
    controller.apply(intent(
        addresses={"eth0": [(ip("10.0.0.1"), 24)]},
        routes=[RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                            out_iface="eth0", next_hop=None)],
    ))
    before_addresses = netlink.dump_addresses("eth0")
    before_routes = netlink.dump_routes(100)
    with pytest.raises(TransactionError):
        controller.apply(
            intent(
                addresses={"eth0": [(ip("10.0.0.2"), 24)]},
                routes=[RouteRecord(table=100, prefix=pfx("98.0.0.0/8"),
                                    out_iface="eth0", next_hop=None)],
            ),
            fail_on=lambda op: op.startswith("add route 98."),
        )
    # Everything rolled back to the pre-apply state.
    assert netlink.dump_routes(100) == before_routes
    assert {str(r.address) for r in netlink.dump_addresses("eth0")} == {
        str(r.address) for r in before_addresses
    }
    assert controller.rollbacks == 1


def test_rollback_restores_removed_objects(setup):
    stack, netlink, controller = setup
    controller.apply(intent(routes=[
        RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                    out_iface="eth0", next_hop=None),
    ]))
    with pytest.raises(TransactionError):
        controller.apply(
            intent(
                routes=[],
                rules=[RuleRecord(priority=5, table=100, match_iif=None,
                                  match_dst=None, match_src=None,
                                  match_dmac=None)],
            ),
            fail_on=lambda op: op.startswith("add rule"),
        )
    assert netlink.dump_routes(100)  # the removed route came back


def test_counters(setup):
    stack, _netlink, controller = setup
    controller.apply(intent())
    assert controller.applies == 1
