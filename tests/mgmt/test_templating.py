"""Template-engine tests."""

import pytest

from repro.mgmt.templating import TemplateError, render


def test_plain_text_passthrough():
    assert render("hello world", {}) == "hello world"


def test_substitution():
    assert render("as {{ asn }};", {"asn": 47065}) == "as 47065;"


def test_dotted_paths_dict_and_attr():
    class Pop:
        name = "amsterdam"

    context = {"pop": Pop(), "config": {"mrai": 0}}
    assert render("{{ pop.name }}/{{ config.mrai }}", context) == "amsterdam/0"


def test_undefined_name_raises():
    with pytest.raises(TemplateError):
        render("{{ missing }}", {})


def test_undefined_attribute_raises():
    with pytest.raises(TemplateError):
        render("{{ pop.nope }}", {"pop": {}})


def test_for_loop():
    out = render(
        "{% for n in neighbors %}bgp {{ n }};\n{% endfor %}",
        {"neighbors": ["a", "b"]},
    )
    assert out == "bgp a;\nbgp b;\n"


def test_empty_loop_renders_nothing():
    assert render("{% for x in items %}X{% endfor %}", {"items": []}) == ""


def test_nested_loops():
    out = render(
        "{% for row in grid %}{% for cell in row %}{{ cell }}{% endfor %};"
        "{% endfor %}",
        {"grid": [[1, 2], [3]]},
    )
    assert out == "12;3;"


def test_if_truthy_and_falsy():
    template = "{% if flag %}on{% endif %}"
    assert render(template, {"flag": True}) == "on"
    assert render(template, {"flag": False}) == ""
    assert render(template, {"flag": []}) == ""


def test_if_undefined_is_false():
    assert render("{% if nothing %}x{% endif %}", {}) == ""


def test_if_inside_for():
    out = render(
        "{% for n in ns %}{% if n.ok %}{{ n.name }} {% endif %}{% endfor %}",
        {"ns": [{"ok": True, "name": "a"}, {"ok": False, "name": "b"}]},
    )
    assert out == "a "


def test_unclosed_for_raises():
    with pytest.raises(TemplateError):
        render("{% for x in items %}x", {"items": [1]})


def test_stray_endfor_raises():
    with pytest.raises(TemplateError):
        render("{% endfor %}", {})


def test_unknown_statement_raises():
    with pytest.raises(TemplateError):
        render("{% while x %}{% endwhile %}", {})


def test_deterministic_output():
    context = {"items": [3, 1, 2]}
    template = "{% for i in items %}{{ i }},{% endfor %}"
    assert render(template, context) == render(template, context)
