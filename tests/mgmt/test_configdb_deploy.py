"""Config database, rendering pipeline, and deployment tests."""

from repro.mgmt import (
    ConfigDatabase,
    Deployer,
    VersionStore,
    render_bird_config,
)
from repro.router import parse_config


class TestConfigDatabase:
    def test_put_get_versions(self):
        db = ConfigDatabase()
        db.put("pops/ams", {"pop_id": 1})
        db.put("pops/ams", {"pop_id": 1, "kind": "ixp"})
        assert db.get("pops/ams").version == 2
        assert db.get("pops/ams", version=1).data == {"pop_id": 1}
        assert db.get("missing") is None

    def test_update_merges(self):
        db = ConfigDatabase()
        db.put("x", {"a": 1})
        db.update("x", b=2)
        assert db.get("x").data == {"a": 1, "b": 2}

    def test_rollback(self):
        db = ConfigDatabase()
        db.put("x", {"v": 1})
        db.put("x", {"v": 2})
        db.rollback("x")
        assert db.get("x").data == {"v": 1}
        assert db.get("x").version == 3  # rollback is a new version

    def test_data_is_copied(self):
        db = ConfigDatabase()
        payload = {"list": [1]}
        db.put("x", payload)
        payload["list"].append(2)
        assert db.get("x").data == {"list": [1]}

    def test_list_paths_and_domain_helpers(self):
        db = ConfigDatabase()
        db.record_experiment("e1", prefixes=["184.164.224.0/24"],
                             asn=47065, capabilities=["bgp-communities"])
        db.record_pop("ams", pop_id=1, kind="ixp", neighbors=[])
        assert db.list_paths("experiments/") == ["experiments/e1"]
        assert db.list_paths() == ["experiments/e1", "pops/ams"]


class TestRenderPipeline:
    def test_database_to_router_config(self):
        """db → template → config text → parsed RouterConfig, end to end."""
        text = render_bird_config(
            pop={"router_id": "100.64.0.1",
                 "server_address": "100.64.0.1",
                 "tunnel_server_ip": "100.125.0.1"},
            platform_asn=47065,
            neighbors=[
                {"name": "up0", "address": "100.64.0.10", "asn": 3356,
                 "transparent": False},
                {"name": "rs0", "address": "100.64.0.11", "asn": 6777,
                 "transparent": True},
            ],
            experiments=[
                {"name": "e1", "tunnel_ip": "100.125.0.2", "asn": 47065},
            ],
            experiment_prefixes=["184.164.224.0/24"],
        )
        config = parse_config(text)
        assert config.asn == 47065
        assert set(config.bgp_protocols) == {"up0", "rs0", "exp_e1"}
        assert config.bgp_protocols["rs0"].transparent
        assert config.bgp_protocols["exp_e1"].addpath
        assert config.bgp_protocols["exp_e1"].import_filter == (
            "experiments_in"
        )

    def test_rendering_is_deterministic(self):
        args = dict(
            pop={"router_id": "1.1.1.1", "server_address": "1.1.1.1",
                 "tunnel_server_ip": "2.2.2.2"},
            platform_asn=47065, neighbors=[], experiments=[],
            experiment_prefixes=[],
        )
        assert render_bird_config(**args) == render_bird_config(**args)


class TestVersionStore:
    def test_commit_and_head(self):
        store = VersionStore()
        assert store.commit("bird.conf", "v1") == 1
        assert store.commit("bird.conf", "v2") == 2
        assert store.head("bird.conf") == "v2"
        assert store.revision("bird.conf", 1) == "v1"

    def test_noop_commit(self):
        store = VersionStore()
        store.commit("f", "same")
        assert store.commit("f", "same") == 1
        assert store.commits == 1

    def test_revert(self):
        store = VersionStore()
        store.commit("f", "v1")
        store.commit("f", "v2")
        assert store.revert("f") == "v1"
        assert store.head("f") == "v1"


class TestDeployer:
    def make(self, servers=4):
        store = VersionStore()
        store.commit("bird.conf", "router id 1.1.1.1;")
        deployer = Deployer(store, canary_fraction=0.25)
        for index in range(servers):
            deployer.add_server(f"server-{index}")
        return store, deployer

    def test_full_fleet_convergence(self):
        store, deployer = self.make()
        result = deployer.deploy(
            "bird", image="bird:2", version=1,
            config_paths={"/etc/bird.conf": "bird.conf"},
        )
        assert result.ok
        assert len(result.servers_converged) == 4
        assert result.configs_changed == 4
        for server in deployer.servers.values():
            assert server.containers["bird"].config["/etc/bird.conf"]

    def test_canary_failure_stops_rollout(self):
        store, deployer = self.make()
        result = deployer.deploy(
            "bird", image="bird:2", version=1,
            config_paths={"/etc/bird.conf": "bird.conf"},
            verify=lambda server: False,
        )
        assert not result.ok
        assert result.canary_only
        # Only the canary wave was touched.
        assert len(result.servers_failed) == 1
        untouched = [
            server for server in deployer.servers.values()
            if "bird" not in server.containers
        ]
        assert len(untouched) == 3

    def test_config_reload_does_not_restart_container(self):
        """§5: reloading configs must not reset sessions/containers."""
        store, deployer = self.make(servers=1)
        deployer.deploy("bird", image="bird:2", version=1,
                        config_paths={"/etc/bird.conf": "bird.conf"})
        container = deployer.servers["server-0"].containers["bird"]
        restarts_before = container.restarts
        store.commit("bird.conf", "router id 2.2.2.2;")
        result = deployer.deploy("bird", image="bird:2", version=1,
                                 config_paths={"/etc/bird.conf": "bird.conf"})
        assert result.configs_changed == 1
        assert container.restarts == restarts_before

    def test_image_upgrade_restarts(self):
        store, deployer = self.make(servers=1)
        deployer.deploy("bird", image="bird:2", version=1,
                        config_paths={})
        container = deployer.servers["server-0"].containers["bird"]
        deployer.deploy("bird", image="bird:2", version=2, config_paths={})
        assert container.version == 2
        assert container.restarts == 1

    def test_periodic_runs_reset_os(self):
        store, deployer = self.make(servers=1)
        for _ in range(3):
            deployer.deploy("bird", image="bird:2", version=1,
                            config_paths={})
        assert deployer.servers["server-0"].os_resets == 3
        assert deployer.runs == 3
