"""Overload chaos scenarios: the ISSUE 8 acceptance criteria.

``ingress-flood`` drives a 5×-capacity announcement flood into one
PoP and must (a) shed only announcements, (b) keep peak queue memory
bounded by the configured capacity, (c) trip and then recover the
neighbor's circuit breaker, and (d) re-converge to the exact
pre-fault snapshot under the *full* invariant catalog — at every
soak seed.  ``slow-consumer`` degrades one queue's drain rate and
shrinks its capacity mid-churn without tripping the breaker.
"""

import pytest

from repro import perf
from repro.chaos import ChaosRunner, build_chaos_world

SOAK_SEEDS = (0, 1, 2, 3, 4)

FULL_CATALOG = (
    "vmac_bijectivity",
    "addpath_completeness",
    "community_propagation",
    "no_cross_experiment_leakage",
    "kernel_consistency",
    "no_withdrawal_loss_under_shed",
)


def _run(name, seed):
    world = build_chaos_world(seed=seed)
    runner = ChaosRunner(world)
    result = runner.run(name)
    return world, result


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_ingress_flood_reconverges_exactly(seed):
    world, result = _run("ingress-flood", seed)
    assert result.ok, result.format()
    # only announcements were shed; the flood genuinely overloaded
    assert result.invariants["shed_only_announcements"]
    assert result.details["announcements_shed"] >= 1
    assert result.details["breaker_trips"] >= 1
    assert result.invariants["breaker_recovered"]
    assert result.invariants["watchdog_flagged"]
    # bounded peak queue memory: never past the configured capacity
    assert result.invariants["bounded_queue_memory"]
    governor = world.platform.pops["west"].overload
    totals = governor.totals()
    assert totals["shed_withdrawals"] == 0
    assert totals["shed_control"] == 0
    assert totals["peak_announce_depth"] <= governor.policy.queue.depth
    # every withdrawal is accounted for once the queues are empty
    assert governor.pending() == 0
    for queue in governor.queues.values():
        stats = queue.stats
        assert stats.withdrawals_admitted == (
            stats.withdrawals_delivered
            + stats.withdrawals_dropped_on_close
        )
    # the full catalog ran, including the new invariant
    for name in FULL_CATALOG:
        assert result.invariants[name], result.format()


@pytest.mark.parametrize("seed", SOAK_SEEDS)
def test_slow_consumer_reconverges(seed):
    world, result = _run("slow-consumer", seed)
    assert result.ok, result.format()
    assert result.invariants["shed_only_announcements"]
    assert result.details["announcements_shed"] >= 1
    # a slow consumer is degradation, not a breaker-worthy failure
    assert result.invariants["breaker_not_tripped"]
    for name in FULL_CATALOG:
        assert result.invariants[name], result.format()


def test_flood_is_seed_deterministic():
    def run(seed):
        world, result = _run("ingress-flood", seed)
        governor = world.platform.pops["west"].overload
        return result, governor.shed_digest()

    result_a, digest_a = run(11)
    result_b, digest_b = run(11)
    assert result_a.ok and result_b.ok
    # Byte-identical shed chains and outcomes: shedding is a pure
    # function of the offered load, so two runs at the same seed must
    # shed exactly the same updates in exactly the same order.
    assert digest_a == digest_b
    assert result_a.details == result_b.details


def test_flood_under_sharded_columnar_pipeline():
    """ISSUE 8 satellite: the overload layer composes with the §6f/§6g
    perf surface — bounded ingress + shedding on top of a two-shard
    fan-out over columnar RIB storage."""
    with perf.flags(shards=2, rib_columnar=True):
        world, result = _run("ingress-flood", 0)
        assert result.ok, result.format()
        assert result.details["announcements_shed"] >= 1
        engine = world.platform.pops["west"].node._shard_engine
        if engine is not None:
            assert engine.stats.withdrawals_shed == 0
    assert perf.FLAGS.shards == 1  # flags restored


def test_overload_scenarios_in_catalog():
    assert "ingress-flood" in ChaosRunner.SCENARIOS
    assert "slow-consumer" in ChaosRunner.SCENARIOS


def test_enforcer_overload_counters_reset_after_heal():
    """ISSUE 8 satellite: post-heal the enforcer's violation log is
    cleared so later scenarios start from a clean slate."""
    world = build_chaos_world(seed=0)
    runner = ChaosRunner(world)
    result = runner.run("enforcer-overload")
    assert result.ok, result.format()
    assert result.invariants["counters_reset"]
    assert result.details["violations_cleared"] >= 0
    for pop in world.platform.pops.values():
        assert pop.control_enforcer.violations == []
        assert not pop.control_enforcer.overloaded
