"""CircuitBreaker state machine: trip, lazy decay, half-open trials."""

from repro.overload.breaker import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.sim import Scheduler


def make_breaker(threshold=4, window=5.0, open_time=10.0, trials=2):
    scheduler = Scheduler()
    breaker = CircuitBreaker(
        scheduler, "peer",
        config=BreakerConfig(
            failure_threshold=threshold,
            failure_window=window,
            open_time=open_time,
            half_open_trials=trials,
        ),
    )
    return scheduler, breaker


def test_trips_at_windowed_threshold():
    scheduler, breaker = make_breaker(threshold=4)
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 1


def test_failures_age_out_of_the_window():
    scheduler, breaker = make_breaker(threshold=4, window=5.0)
    for _ in range(3):
        breaker.record_failure()
    scheduler.run_for(6.0)  # the three failures fall out of the window
    breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED


def test_open_refuses_and_counts_rejections():
    scheduler, breaker = make_breaker(threshold=1)
    breaker.record_failure()
    assert not breaker.allow()
    assert not breaker.allow()
    assert breaker.rejected == 2


def test_open_decays_to_half_open_then_closes_on_trials():
    scheduler, breaker = make_breaker(threshold=1, open_time=10.0, trials=2)
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    scheduler.run_for(10.0)
    assert breaker.state == BREAKER_HALF_OPEN
    assert breaker.allow()  # trial traffic admitted
    breaker.record_success()
    assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_success()
    assert breaker.state == BREAKER_CLOSED


def test_failure_during_half_open_retrips():
    scheduler, breaker = make_breaker(threshold=1, open_time=10.0)
    breaker.record_failure()
    scheduler.run_for(10.0)
    assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN
    assert breaker.trips == 2


def test_success_while_closed_is_a_no_op():
    scheduler, breaker = make_breaker(threshold=2)
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == BREAKER_OPEN  # successes do not erase history


def test_reset_window_forgets_subthreshold_failures():
    scheduler, breaker = make_breaker(threshold=4)
    for _ in range(3):
        breaker.record_failure()
    breaker.reset_window()
    for _ in range(3):
        breaker.record_failure()
    assert breaker.state == BREAKER_CLOSED


def test_transitions_are_reported():
    scheduler = Scheduler()
    seen = []
    breaker = CircuitBreaker(
        scheduler, "peer",
        config=BreakerConfig(failure_threshold=1, open_time=5.0,
                             half_open_trials=1),
        on_transition=lambda b, old, new, why: seen.append((old, new)),
    )
    breaker.record_failure()
    scheduler.run_for(5.0)
    assert breaker.state == BREAKER_HALF_OPEN
    breaker.record_success()
    assert seen == [
        (BREAKER_CLOSED, BREAKER_OPEN),
        (BREAKER_OPEN, BREAKER_HALF_OPEN),
        (BREAKER_HALF_OPEN, BREAKER_CLOSED),
    ]
