"""Property-based shedding guarantees (Hypothesis).

For *any* interleaving of announcements and withdrawals offered to a
bounded ingress queue:

* survivors are delivered in arrival order (shedding drops, never
  reorders, a neighbor's stream),
* every withdrawal is delivered, in order, regardless of overload,
* the accounting ledger balances exactly.
"""

from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overload.queues import IngressQueue, QueuePolicy
from repro.sim import Scheduler


class StubSession:
    def __init__(self):
        self.established = True
        self.delivered = []

    def deliver_update(self, update):
        self.delivered.append(update)


def make_update(seq, kind, prefix_index):
    prefix = f"10.9.{prefix_index}.0/24"
    if kind == "withdraw":
        return SimpleNamespace(nlri=[], withdrawn=[prefix], seq=seq)
    return SimpleNamespace(nlri=[(prefix, None)], withdrawn=[], seq=seq)


operations = st.lists(
    st.tuples(
        st.sampled_from(["announce", "withdraw"]),
        st.integers(min_value=0, max_value=19),
    ),
    max_size=120,
)


@settings(deadline=None, max_examples=60)
@given(ops=operations, depth=st.integers(min_value=1, max_value=8))
def test_shedding_never_reorders_surviving_updates(ops, depth):
    scheduler = Scheduler()
    queue = IngressQueue(
        scheduler, "peer",
        policy=QueuePolicy(depth=depth, drain_batch=4,
                           drain_interval=0.01),
    )
    session = StubSession()
    updates = [
        make_update(seq, kind, prefix_index)
        for seq, (kind, prefix_index) in enumerate(ops)
    ]
    for update in updates:
        queue.offer(session, update)
    scheduler.run_for(60)  # more than enough ticks to drain everything
    assert queue.pending == 0

    delivered = [update.seq for update in session.delivered]
    # survivors form a subsequence of the arrival order
    assert delivered == sorted(delivered)
    # withdrawals are never shed: all of them arrive, in order
    offered_withdrawals = [u.seq for u in updates if u.withdrawn]
    delivered_withdrawals = [
        u.seq for u in session.delivered if u.withdrawn
    ]
    assert delivered_withdrawals == offered_withdrawals
    assert queue.stats.shed_withdrawals == 0
    assert queue.stats.shed_control == 0
    # exact accounting: everything admitted is delivered or shed
    assert queue.stats.admitted == len(updates)
    assert queue.stats.delivered + queue.stats.shed_updates == len(updates)
    assert queue.stats.peak_announce_depth <= depth
