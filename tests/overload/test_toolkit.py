"""The operator surface of the overload layer: ``peering health``,
the intent controller's critical-PoP gate, and the session
supervisor's damping/quarantine accessors."""

import pytest

from repro.chaos import build_chaos_world
from repro.toolkit.cli import ToolkitCli


@pytest.fixture
def world():
    return build_chaos_world(seed=0)


@pytest.fixture
def cli(world):
    return ToolkitCli(next(iter(world.clients.values())))


def _enable(world, pop="west"):
    governor = world.platform.pops[pop].enable_overload()
    world.scheduler.run_for(5)
    return governor


# -- peering health ----------------------------------------------------------


def test_health_reports_disabled_layer(world, cli):
    out, code = cli.run_with_status("peering health")
    assert code == 0
    assert "west: overload layer not enabled" in out
    assert "east: overload layer not enabled" in out


def test_health_healthy_exit_zero(world, cli):
    _enable(world)
    out, code = cli.run_with_status("peering health")
    assert code == 0
    assert "west: HEALTHY" in out
    assert "transit-west" in out
    assert "breaker closed" in out


def test_health_pop_filter_and_unknown_pop(world, cli):
    _enable(world)
    out, code = cli.run_with_status("peering health west")
    assert code == 0
    assert "east" not in out
    out, code = cli.run_with_status("peering health nowhere")
    assert code == 2
    assert out.startswith("error:")


def test_health_exit_codes_track_worst_state(world, cli):
    _enable(world)
    watchdog = world.platform.pops["west"].watchdog
    watchdog.state = "degraded"
    out, code = cli.run_with_status("peering health")
    assert code == 1
    assert "west: DEGRADED" in out
    watchdog.state = "critical"
    out, code = cli.run_with_status("peering health")
    assert code == 2
    assert "west: CRITICAL" in out


def test_health_in_usage_text(cli):
    assert "peering health [pop]" in cli._usage()


# -- the intent health gate --------------------------------------------------


def test_intent_apply_refused_against_critical_pop(world, cli):
    _enable(world)
    world.platform.pops["west"].watchdog.state = "critical"
    cli.run("peering intent op announce 184.164.224.0/24 -m west")
    out, code = cli.run_with_status("peering intent apply --force")
    assert code == 1  # the gate ignores force
    assert "rejected" in out
    assert "critical health: west" in out


def test_intent_apply_untouched_pop_commits(world, cli):
    _enable(world)
    world.platform.pops["west"].watchdog.state = "critical"
    # an op scoped to the healthy east PoP is not gated by west
    cli.run("peering intent op announce 184.164.224.0/24 -m east")
    out, code = cli.run_with_status("peering intent apply")
    assert code == 0
    assert "committed" in out


def test_intent_unscoped_op_gated_by_any_critical_pop(world, cli):
    _enable(world)
    world.platform.pops["west"].watchdog.state = "critical"
    # no -m: the op targets every connected PoP, so west gates it
    cli.run("peering intent op announce 184.164.224.0/24")
    out, code = cli.run_with_status("peering intent apply")
    assert code == 1
    assert "critical health: west" in out


def test_intent_apply_commits_after_heal(world, cli):
    _enable(world)
    world.platform.pops["west"].watchdog.state = "critical"
    cli.run("peering intent op announce 184.164.224.0/24 -m west")
    out, code = cli.run_with_status("peering intent apply")
    assert code == 1
    world.platform.pops["west"].watchdog.state = "healthy"
    cli.run("peering intent op announce 184.164.224.0/24 -m west")
    out, code = cli.run_with_status("peering intent apply")
    assert code == 0
    assert "committed" in out


# -- supervisor damping / quarantine ----------------------------------------


def _supervisor(world, name="transit-west"):
    handle = world.neighbors[name]
    return world.platform.pops[handle.pop].node.upstreams[
        handle.name
    ].supervisor


def test_damping_state_accessor(world):
    supervisor = _supervisor(world)
    state = supervisor.damping_state()
    assert state["state"] == "active"
    assert state["suppressed"] is False
    assert state["remaining_s"] == 0.0
    assert state["suppressions"] == 0


def test_quarantine_suppresses_and_reports(world):
    supervisor = _supervisor(world)
    supervisor.quarantine(30.0)
    assert supervisor.suppressed
    state = supervisor.damping_state()
    assert state["state"] == "suppressed"
    assert state["remaining_s"] == pytest.approx(30.0)
    assert state["suppressions"] == 1
    world.scheduler.run_for(31.0)
    assert not supervisor.suppressed
    assert supervisor.damping_state()["state"] == "active"


def test_quarantine_extends_not_shortens(world):
    supervisor = _supervisor(world)
    supervisor.quarantine(30.0)
    supervisor.quarantine(10.0)  # shorter re-quarantine must not shrink
    assert supervisor.damping_state()["remaining_s"] == pytest.approx(30.0)
    supervisor.quarantine(60.0)
    assert supervisor.damping_state()["remaining_s"] == pytest.approx(60.0)


def test_suppression_gauge_exported(world):
    supervisor = _supervisor(world)
    supervisor.quarantine(30.0)
    rendered = world.telemetry.render_prometheus()
    assert "bgp_supervisor_suppressed" in rendered
    assert 'peer="transit-west"} 1' in rendered
