"""IngressQueue unit tests: class-aware shedding, FIFO survival,
exact accounting, digest determinism, and the injector hooks."""

from types import SimpleNamespace

from repro.overload.breaker import BreakerConfig, CircuitBreaker
from repro.overload.queues import (
    CLASS_ANNOUNCE,
    CLASS_CONTROL,
    CLASS_WITHDRAW,
    IngressQueue,
    QueuePolicy,
    classify_update,
)
from repro.sim import Scheduler


class StubSession:
    def __init__(self):
        self.established = True
        self.delivered = []

    def deliver_update(self, update):
        self.delivered.append(update)


def announce(seq):
    return SimpleNamespace(
        nlri=[(f"10.0.{seq % 250}.0/24", None)], withdrawn=[], seq=seq
    )


def withdraw(seq):
    return SimpleNamespace(
        nlri=[], withdrawn=[f"10.0.{seq % 250}.0/24"], seq=seq
    )


def control(seq):
    return SimpleNamespace(nlri=[], withdrawn=[], seq=seq)


def make_queue(depth=4, batch=4, interval=0.01, **kwargs):
    scheduler = Scheduler()
    queue = IngressQueue(
        scheduler,
        "peer",
        policy=QueuePolicy(
            depth=depth, drain_batch=batch, drain_interval=interval
        ),
        **kwargs,
    )
    return scheduler, queue


def test_classify_update():
    assert classify_update(announce(0)) == CLASS_ANNOUNCE
    assert classify_update(withdraw(0)) == CLASS_WITHDRAW
    assert classify_update(control(0)) == CLASS_CONTROL
    # an UPDATE carrying any withdrawal travels the withdraw class
    mixed = SimpleNamespace(
        nlri=[("10.0.0.0/24", None)], withdrawn=["10.0.1.0/24"]
    )
    assert classify_update(mixed) == CLASS_WITHDRAW


def test_announcements_shed_oldest_first():
    scheduler, queue = make_queue(depth=4)
    session = StubSession()
    for seq in range(6):
        assert queue.offer(session, announce(seq))
    assert queue.stats.shed_updates == 2
    assert queue.stats.shed_announcements == 2
    scheduler.run_for(5)
    # the two oldest (0, 1) were shed; survivors arrive in order
    assert [u.seq for u in session.delivered] == [2, 3, 4, 5]


def test_withdrawals_never_shed_even_beyond_capacity():
    scheduler, queue = make_queue(depth=2)
    session = StubSession()
    for seq in range(10):
        assert queue.offer(session, withdraw(seq))
    assert queue.pending == 10  # transiently beyond capacity
    assert queue.stats.shed_withdrawals == 0
    assert queue.stats.withdrawals_admitted == 10
    scheduler.run_for(5)
    assert [u.seq for u in session.delivered] == list(range(10))
    assert queue.stats.withdrawals_delivered == 10


def test_survivors_keep_arrival_order_in_mixed_stream():
    scheduler, queue = make_queue(depth=3)
    session = StubSession()
    updates = [
        announce(0), withdraw(1), announce(2), announce(3),
        withdraw(4), announce(5), announce(6), announce(7),
    ]
    for update in updates:
        queue.offer(session, update)
    scheduler.run_for(5)
    seqs = [u.seq for u in session.delivered]
    assert seqs == sorted(seqs)  # a subsequence of the arrival order
    assert [s for s in seqs if updates[s].withdrawn] == [1, 4]


def test_peak_announce_depth_bounded_by_capacity():
    scheduler, queue = make_queue(depth=5)
    session = StubSession()
    for seq in range(40):
        queue.offer(session, announce(seq))
    assert queue.stats.peak_announce_depth <= 5
    scheduler.run_for(5)
    ledger = (
        queue.stats.delivered
        + queue.stats.shed_updates
        + queue.stats.dropped_on_close
    )
    assert ledger == queue.stats.admitted


def test_shed_digest_is_deterministic():
    def run():
        scheduler, queue = make_queue(depth=3)
        session = StubSession()
        for seq in range(20):
            queue.offer(session, announce(seq))
        scheduler.run_for(5)
        return queue.shed_digest()

    assert run() == run()

    def run_other():
        scheduler, queue = make_queue(depth=3)
        session = StubSession()
        for seq in range(20):
            queue.offer(session, announce(seq + 1))
        scheduler.run_for(5)
        return queue.shed_digest()

    assert run() != run_other()


def test_backpressure_holds_delivery():
    congested = [True]
    scheduler, queue = make_queue(backpressure=lambda: congested[0])
    session = StubSession()
    queue.offer(session, announce(0))
    scheduler.run_for(1)
    assert session.delivered == []  # held, not dropped
    assert queue.pending == 1
    congested[0] = False
    scheduler.run_for(1)
    assert [u.seq for u in session.delivered] == [0]


def test_flush_session_accounts_drops():
    scheduler, queue = make_queue(depth=8)
    dead, alive = StubSession(), StubSession()
    queue.offer(dead, announce(0))
    queue.offer(alive, announce(1))
    queue.offer(dead, withdraw(2))
    assert queue.flush_session(dead) == 2
    assert queue.stats.dropped_on_close == 2
    assert queue.stats.withdrawals_dropped_on_close == 1
    scheduler.run_for(5)
    assert [u.seq for u in alive.delivered] == [1]


def test_dead_session_entries_dropped_at_drain():
    scheduler, queue = make_queue(depth=8)
    session = StubSession()
    queue.offer(session, announce(0))
    session.established = False
    scheduler.run_for(5)
    assert session.delivered == []
    assert queue.stats.dropped_on_close == 1


def test_resize_sheds_immediately_and_restore_undoes():
    scheduler, queue = make_queue(depth=8, interval=60.0)
    session = StubSession()
    for seq in range(8):
        queue.offer(session, announce(seq))
    shed = queue.resize(3)
    assert shed == 5
    assert queue.announce_depth == 3
    queue.restore()
    assert queue.capacity == 8


def test_slowdown_stalls_drain_until_restore():
    scheduler, queue = make_queue(interval=0.01)
    session = StubSession()
    queue.slowdown(10_000.0)
    queue.offer(session, announce(0))
    scheduler.run_for(5)
    assert session.delivered == []
    queue.restore()
    # the already-armed slow tick must fire before the fast cadence
    # resumes; restore() affects the next arm
    scheduler.run_for(200)
    assert [u.seq for u in session.delivered] == [0]


def test_open_breaker_refuses_announcements_not_withdrawals():
    scheduler = Scheduler()
    breaker = CircuitBreaker(
        scheduler, "peer",
        config=BreakerConfig(failure_threshold=1, open_time=100.0),
    )
    breaker.record_failure()
    assert breaker.state == "open"
    queue = IngressQueue(
        scheduler, "peer",
        policy=QueuePolicy(depth=4, drain_interval=0.01),
        breaker=breaker,
    )
    session = StubSession()
    assert not queue.offer(session, announce(0))
    assert queue.stats.rejected_updates == 1
    assert queue.stats.rejected_announcements == 1
    assert queue.offer(session, withdraw(1))  # withdrawals always pass
    scheduler.run_for(1)
    assert [u.seq for u in session.delivered] == [1]
