"""HealthWatchdog: escalation, hysteresis, telemetry publication."""

from repro.overload import OverloadGovernor, OverloadPolicy
from repro.overload.breaker import BreakerConfig
from repro.overload.queues import QueuePolicy
from repro.overload.watchdog import (
    CRITICAL,
    DEGRADED,
    HEALTHY,
    HealthWatchdog,
    WatchdogConfig,
)
from repro.sim import Scheduler
from repro.telemetry import TelemetryHub


def make_world(recover_ticks=3, with_telemetry=False):
    scheduler = Scheduler()
    telemetry = TelemetryHub(scheduler) if with_telemetry else None
    governor = OverloadGovernor(
        scheduler, scope="pop",
        policy=OverloadPolicy(
            queue=QueuePolicy(depth=8),
            breaker=BreakerConfig(failure_threshold=1, open_time=30.0),
        ),
        telemetry=telemetry,
    )
    watchdog = HealthWatchdog(
        scheduler, "pop", governor, telemetry=telemetry,
        config=WatchdogConfig(interval=1.0, recover_ticks=recover_ticks),
    )
    watchdog.start()
    return scheduler, governor, watchdog, telemetry


def test_starts_healthy():
    scheduler, governor, watchdog, _ = make_world()
    scheduler.run_for(5)
    assert watchdog.state == HEALTHY


def test_open_breaker_is_critical_and_recovery_needs_calm_ticks():
    scheduler, governor, watchdog, _ = make_world(recover_ticks=3)
    governor.breaker_for("upstream").record_failure()
    scheduler.run_for(1.0)
    assert watchdog.state == CRITICAL
    # force the breaker shut: one calm tick is not enough to de-escalate
    breaker = governor.breakers["upstream"]
    breaker._state = "closed"
    breaker._open_until = 0.0
    scheduler.run_for(1.0)
    assert watchdog.state == CRITICAL  # hysteresis holds
    scheduler.run_for(3.0)
    assert watchdog.state == HEALTHY


def test_half_open_breaker_is_degraded():
    scheduler, governor, watchdog, _ = make_world()
    governor.breaker_for("upstream").record_failure()
    scheduler.run_for(31.0)  # past open_time: the breaker is half-open
    state, detail = watchdog.evaluate()
    assert state == DEGRADED
    assert "half-open" in detail


def test_deep_queue_escalates():
    scheduler, governor, watchdog, _ = make_world()

    class Stalled:
        established = True

        def deliver_update(self, update):
            pass

    from types import SimpleNamespace

    queue = governor.queue_for("upstream")
    queue.slowdown(10_000.0)  # nothing drains during the test
    for seq in range(8):
        queue.offer(Stalled(), SimpleNamespace(
            nlri=[(f"10.0.{seq}.0/24", None)], withdrawn=[],
        ))
    state, detail = watchdog.evaluate()
    assert state == CRITICAL  # 8/8 = 100% ≥ critical_depth_fraction
    assert "full" in detail


def test_shed_rate_degrades():
    scheduler, governor, watchdog, _ = make_world()
    governor._note_shed("upstream", 25)  # 25 routes / 10 s window
    state, _ = watchdog.evaluate()
    assert state == DEGRADED
    governor._note_shed("upstream", 500)
    state, _ = watchdog.evaluate()
    assert state == CRITICAL


def test_transitions_publish_health_events():
    scheduler, governor, watchdog, telemetry = make_world(
        recover_ticks=1, with_telemetry=True
    )
    governor.breaker_for("upstream").record_failure()
    scheduler.run_for(1.0)
    assert watchdog.state == CRITICAL
    events = [
        message for message in telemetry.station.history
        if message.kind == "health"
    ]
    assert events, "no HealthEvent published on escalation"
    assert events[-1].state == CRITICAL
    assert events[-1].previous == HEALTHY
    assert events[-1].peer == "pop:pop"
    # and the scrape-time gauge tracks the state
    assert 'pop_health_state{pop="pop"} 2' in telemetry.render_prometheus()


def test_snapshot_shape():
    scheduler, governor, watchdog, _ = make_world()
    governor.queue_for("upstream")
    scheduler.run_for(2)
    snap = watchdog.snapshot()
    assert snap["state"] == HEALTHY
    assert "upstream" in snap["breakers"]
    assert snap["depth_fraction"] == 0.0


def test_stop_halts_ticking():
    scheduler, governor, watchdog, _ = make_world()
    watchdog.stop()
    governor.breaker_for("upstream").record_failure()
    scheduler.run_for(10)
    assert watchdog.state == HEALTHY  # no ticks, no escalation
