"""Link and learning-switch behaviour."""

from repro.netsim.addr import MacAddress
from repro.netsim.frames import EtherType, EthernetFrame
from repro.netsim.link import Link, Port, Switch
from repro.sim import Scheduler


def frame(src: int, dst: int, payload: bytes = b"x" * 100,
          vlan=None) -> EthernetFrame:
    return EthernetFrame(src=MacAddress(src), dst=MacAddress(dst),
                         ethertype=EtherType.IPV4, payload=payload,
                         vlan=vlan)


def collector(received):
    return lambda f, port: received.append(f)


def test_link_delivers_with_latency():
    sched = Scheduler()
    a, b = Port(), Port()
    Link(sched, a, b, latency=0.5)
    received = []
    b.attach(collector(received))
    a.transmit(frame(1, 2))
    sched.run_until(0.4)
    assert received == []
    sched.run_until(0.6)
    assert len(received) == 1


def test_link_serialization_delay():
    sched = Scheduler()
    a, b = Port(), Port()
    Link(sched, a, b, bandwidth_bps=8000.0)  # 1000 bytes/sec
    received = []
    b.attach(collector(received))
    a.transmit(frame(1, 2, payload=b"x" * 986))  # 1000B total
    sched.run()
    assert sched.now >= 1.0


def test_link_queue_overflow_drops():
    sched = Scheduler()
    a, b = Port(), Port()
    link = Link(sched, a, b, bandwidth_bps=8_000.0, queue_limit=2)
    b.attach(collector([]))
    for _ in range(10):
        a.transmit(frame(1, 2, payload=b"x" * 986))
    assert link.drops > 0


def test_link_random_loss_deterministic_by_seed():
    sched = Scheduler()
    a, b = Port(), Port()
    link = Link(sched, a, b, loss=0.5, seed=1)
    received = []
    b.attach(collector(received))
    for _ in range(100):
        a.transmit(frame(1, 2))
    sched.run()
    assert 20 < len(received) < 80
    assert link.drops == 100 - len(received)


def test_port_counters():
    sched = Scheduler()
    a, b = Port(), Port()
    Link(sched, a, b)
    b.attach(collector([]))
    a.transmit(frame(1, 2))
    sched.run()
    assert a.tx_frames == 1
    assert b.rx_frames == 1
    assert b.rx_bytes == a.tx_bytes


def test_unplugged_port_drops_silently():
    port = Port()
    port.transmit(frame(1, 2))  # no exception
    assert port.tx_frames == 0


def _switched_hosts(sched, count=3):
    """count hosts on one switch, each behind a Link."""
    switch = Switch(sched)
    hosts = []
    for index in range(count):
        host_port = Port(f"h{index}")
        Link(sched, host_port, switch.add_port())
        received = []
        host_port.attach(collector(received))
        hosts.append((host_port, received))
    return switch, hosts


def test_switch_floods_unknown_destination():
    sched = Scheduler()
    switch, hosts = _switched_hosts(sched)
    hosts[0][0].transmit(frame(1, 99))
    sched.run()
    assert len(hosts[1][1]) == 1
    assert len(hosts[2][1]) == 1
    assert len(hosts[0][1]) == 0  # not reflected


def test_switch_learns_and_unicasts():
    sched = Scheduler()
    switch, hosts = _switched_hosts(sched)
    hosts[1][0].transmit(frame(2, 99))  # teach the switch MAC 2 @ port 1
    sched.run()
    for _h, received in hosts:
        received.clear()
    hosts[0][0].transmit(frame(1, 2))
    sched.run()
    assert len(hosts[1][1]) == 1
    assert len(hosts[2][1]) == 0


def test_switch_broadcast():
    sched = Scheduler()
    switch, hosts = _switched_hosts(sched)
    hosts[0][0].transmit(frame(1, MacAddress.BROADCAST_VALUE))
    sched.run()
    assert len(hosts[1][1]) == 1 and len(hosts[2][1]) == 1


def test_switch_vlan_isolation():
    sched = Scheduler()
    switch, hosts = _switched_hosts(sched)
    # Learn MAC 2 on VLAN 10.
    hosts[1][0].transmit(frame(2, 99, vlan=10))
    sched.run()
    for _h, received in hosts:
        received.clear()
    # Same MAC on a different VLAN is unknown → flooded.
    hosts[0][0].transmit(frame(1, 2, vlan=20))
    sched.run()
    assert len(hosts[1][1]) == 1 and len(hosts[2][1]) == 1
    assert switch.flooded >= 1
