"""LPM trie tests, including a hypothesis model check against a naive
reference implementation and differential tests of the stride-trie fast
path (with and without the lookup cache) against a linear-scan oracle."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.netsim.addr import IPv4Address, IPv4Prefix, IPv6Address, IPv6Prefix
from repro.netsim.lpm import LinearScanLpm, LpmTable


def prefix(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def addr(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


def test_empty_lookup():
    assert LpmTable().lookup(addr("1.2.3.4")) is None


def test_exact_insert_get_remove():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/24"), "a")
    assert table.get(prefix("10.0.0.0/24")) == "a"
    assert table.get(prefix("10.0.0.0/25")) is None
    assert table.remove(prefix("10.0.0.0/24"))
    assert table.get(prefix("10.0.0.0/24")) is None
    assert not table.remove(prefix("10.0.0.0/24"))


def test_longest_match_wins():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), "big")
    table.insert(prefix("10.1.0.0/16"), "mid")
    table.insert(prefix("10.1.2.0/24"), "small")
    assert table.lookup(addr("10.1.2.3")).value == "small"
    assert table.lookup(addr("10.1.9.9")).value == "mid"
    assert table.lookup(addr("10.9.9.9")).value == "big"
    assert table.lookup(addr("11.0.0.1")) is None


def test_default_route():
    table = LpmTable()
    table.insert(prefix("0.0.0.0/0"), "default")
    table.insert(prefix("10.0.0.0/8"), "ten")
    assert table.lookup(addr("200.0.0.1")).value == "default"
    assert table.lookup(addr("10.0.0.1")).value == "ten"


def test_replace_value():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/24"), "old")
    table.insert(prefix("10.0.0.0/24"), "new")
    assert len(table) == 1
    assert table.get(prefix("10.0.0.0/24")) == "new"


def test_lookup_all_orders_short_to_long():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), 8)
    table.insert(prefix("10.1.0.0/16"), 16)
    table.insert(prefix("10.1.2.0/24"), 24)
    values = [e.value for e in table.lookup_all(addr("10.1.2.3"))]
    assert values == [8, 16, 24]


def test_covered_by():
    table = LpmTable()
    table.insert(prefix("10.1.0.0/24"), 1)
    table.insert(prefix("10.1.1.0/24"), 2)
    table.insert(prefix("10.2.0.0/24"), 3)
    covered = {str(e.prefix) for e in table.covered_by(prefix("10.1.0.0/16"))}
    assert covered == {"10.1.0.0/24", "10.1.1.0/24"}


def test_entries_iteration_and_len():
    table = LpmTable()
    for index in range(50):
        table.insert(prefix(f"10.{index}.0.0/16"), index)
    assert len(table) == 50
    assert {e.value for e in table.entries()} == set(range(50))


def test_remove_prunes_nodes():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/30"), "x")
    table.remove(prefix("10.0.0.0/30"))
    # No internal nodes should be left after pruning.
    assert table.node_count() == 0


def test_clear():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), 1)
    table.clear()
    assert len(table) == 0
    assert table.lookup(addr("10.0.0.1")) is None


def test_contains():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), 1)
    assert prefix("10.0.0.0/8") in table
    assert prefix("10.0.0.0/9") not in table


prefixes_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(prefixes_st, st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_matches_naive_reference(pairs, probe):
    """The trie agrees with a brute-force longest-match search."""
    table = LpmTable()
    model: dict[IPv4Prefix, int] = {}
    for index, (value, length) in enumerate(pairs):
        p = IPv4Prefix.from_address(IPv4Address(value), length)
        table.insert(p, index)
        model[p] = index
    address = IPv4Address(probe)
    matches = [p for p in model if p.contains_address(address)]
    expected = max(matches, key=lambda p: p.length, default=None)
    got = table.lookup(address)
    if expected is None:
        assert got is None
    else:
        assert got is not None
        assert got.prefix.length == expected.length
        assert got.value == model[expected]


@settings(max_examples=40, deadline=None)
@given(prefixes_st)
def test_insert_remove_restores_empty(pairs):
    table = LpmTable()
    inserted = []
    for index, (value, length) in enumerate(pairs):
        p = IPv4Prefix.from_address(IPv4Address(value), length)
        table.insert(p, index)
        inserted.append(p)
    for p in set(inserted):
        assert table.remove(p)
    assert len(table) == 0
    assert table.node_count() == 0


# ---------------------------------------------------------------------------
# Fast-path edge cases and cache-invalidation behaviour (PR 1)
# ---------------------------------------------------------------------------


BACKENDS = [
    pytest.param({"stride": True, "cache": False}, id="stride"),
    pytest.param({"stride": True, "cache": True}, id="stride+cache"),
    pytest.param({"stride": False, "cache": False}, id="binary"),
    pytest.param({"stride": False, "cache": True}, id="binary+cache"),
]


@pytest.mark.parametrize("kwargs", BACKENDS)
def test_default_route_all_backends(kwargs):
    table = LpmTable(**kwargs)
    table.insert(prefix("0.0.0.0/0"), "default")
    assert table.lookup(addr("1.2.3.4")).value == "default"
    assert table.lookup(addr("255.255.255.255")).value == "default"
    table.insert(prefix("10.0.0.0/8"), "ten")
    assert table.lookup(addr("10.200.0.1")).value == "ten"
    assert table.lookup(addr("11.0.0.1")).value == "default"
    assert table.remove(prefix("0.0.0.0/0"))
    assert table.lookup(addr("11.0.0.1")) is None


@pytest.mark.parametrize("kwargs", BACKENDS)
def test_host_route_wins_all_backends(kwargs):
    table = LpmTable(**kwargs)
    table.insert(prefix("10.0.0.0/24"), "net")
    table.insert(prefix("10.0.0.7/32"), "host")
    assert table.lookup(addr("10.0.0.7")).value == "host"
    assert table.lookup(addr("10.0.0.8")).value == "net"
    assert table.get(prefix("10.0.0.7/32")) == "host"
    assert table.remove(prefix("10.0.0.7/32"))
    assert table.lookup(addr("10.0.0.7")).value == "net"


def test_remove_then_lookup_invalidates_cache():
    table = LpmTable(stride=True, cache=True)
    table.insert(prefix("10.0.0.0/8"), "big")
    table.insert(prefix("10.1.0.0/16"), "small")
    probe = addr("10.1.2.3")
    assert table.lookup(probe).value == "small"
    assert table.lookup(probe).value == "small"  # cached
    assert table.cache_hits >= 1
    assert table.remove(prefix("10.1.0.0/16"))
    # The cached result covering 10.1/16 must have been dropped.
    assert table.lookup(probe).value == "big"
    assert table.remove(prefix("10.0.0.0/8"))
    assert table.lookup(probe) is None


def test_covering_insert_invalidates_cached_miss():
    table = LpmTable(stride=True, cache=True)
    probe = addr("192.0.2.55")
    assert table.lookup(probe) is None
    assert table.lookup(probe) is None  # the miss itself is cached
    assert table.cache_hits >= 1
    table.insert(prefix("192.0.2.0/24"), "now")
    assert table.lookup(probe).value == "now"
    # A covering insert must also supersede a cached *shorter* hit.
    other = addr("192.0.2.200")
    assert table.lookup(other).value == "now"
    table.insert(prefix("192.0.2.128/25"), "more-specific")
    assert table.lookup(other).value == "more-specific"


def test_unrelated_insert_keeps_cache_entries():
    table = LpmTable(stride=True, cache=True)
    table.insert(prefix("10.0.0.0/8"), "ten")
    probe = addr("10.1.2.3")
    assert table.lookup(probe).value == "ten"
    before = table.cache_len()
    table.insert(prefix("172.16.0.0/12"), "unrelated")
    assert table.cache_len() == before  # not covered -> not invalidated
    hits = table.cache_hits
    assert table.lookup(probe).value == "ten"
    assert table.cache_hits == hits + 1


def test_cache_is_bounded_lru():
    table = LpmTable(stride=True, cache=True, cache_size=4)
    table.insert(prefix("0.0.0.0/0"), "d")
    for i in range(10):
        table.lookup(IPv4Address(i))
    assert table.cache_len() <= 4


def test_lpm_table_honours_perf_flags():
    with perf.flags(stride_lpm=False, lpm_cache=False):
        table = LpmTable()
        assert table.cache_len() == 0
        table.insert(prefix("10.0.0.0/8"), 1)
        table.lookup(addr("10.0.0.1"))
        assert table.cache_misses == 0  # no cache layer at all
    with perf.flags(stride_lpm=True, lpm_cache=True):
        table = LpmTable()
        table.insert(prefix("10.0.0.0/8"), 1)
        table.lookup(addr("10.0.0.1"))
        assert table.cache_misses == 1


def test_ipv6_prefixes_supported_by_stride_trie():
    table = LpmTable(stride=True, cache=True)
    table.insert(IPv6Prefix.parse("2804:269c::/32"), "peering")
    table.insert(IPv6Prefix.parse("2804:269c:fe::/48"), "pop")
    assert table.lookup(
        IPv6Address.parse("2804:269c:fe::1")
    ).value == "pop"
    assert table.lookup(
        IPv6Address.parse("2804:269c:1::1")
    ).value == "peering"
    assert table.lookup(IPv6Address.parse("2001:db8::1")) is None


@pytest.mark.parametrize("kwargs", BACKENDS)
def test_randomized_differential_against_linear_scan(kwargs):
    """≥1k random prefixes: the trie agrees with the linear-scan oracle
    through a churn of inserts, removes, and lookups."""
    rng = random.Random(20260806)
    table = LpmTable(**kwargs)
    oracle = LinearScanLpm()
    live = []
    for index in range(1200):
        value = rng.getrandbits(32)
        length = rng.choice(
            [0, 1, 7, 8, 9, 15, 16, 17, 20, 23, 24, 25, 30, 31, 32]
        )
        p = IPv4Prefix.from_address(IPv4Address(value), length)
        table.insert(p, index)
        oracle.insert(p, index)
        live.append(p)
        if rng.random() < 0.25 and live:
            victim = live.pop(rng.randrange(len(live)))
            assert table.remove(victim) == (victim in oracle._entries)
            oracle.remove(victim)
        if index % 3 == 0:
            probe = IPv4Address(rng.getrandbits(32))
            got = table.lookup(probe)
            want = oracle.lookup(probe)
            if want is None:
                assert got is None
            else:
                assert got is not None
                assert got.prefix == want.prefix
    assert len(table) == len(oracle)
    # Full sweep at the end, including repeat (cached) probes.
    for _ in range(500):
        probe = IPv4Address(rng.getrandbits(32))
        for attempt in range(2):
            got = table.lookup(probe)
            want = oracle.lookup(probe)
            assert (got is None) == (want is None)
            if got is not None:
                assert got.prefix == want.prefix


@settings(max_examples=40, deadline=None)
@given(prefixes_st, st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_stride_and_binary_backends_agree(pairs, probe):
    stride = LpmTable(stride=True, cache=False)
    binary = LpmTable(stride=False, cache=False)
    for index, (value, length) in enumerate(pairs):
        p = IPv4Prefix.from_address(IPv4Address(value), length)
        stride.insert(p, index)
        binary.insert(p, index)
    address = IPv4Address(probe)
    got_s = stride.lookup(address)
    got_b = binary.lookup(address)
    assert (got_s is None) == (got_b is None)
    if got_s is not None:
        assert got_s.prefix == got_b.prefix
        assert got_s.value == got_b.value
    all_s = [e.prefix for e in stride.lookup_all(address)]
    all_b = [e.prefix for e in binary.lookup_all(address)]
    assert all_s == all_b
    assert sorted(e.prefix.key() for e in stride.entries()) == sorted(
        e.prefix.key() for e in binary.entries()
    )
