"""LPM trie tests, including a hypothesis model check against a naive
reference implementation."""

from hypothesis import given, settings, strategies as st

from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.netsim.lpm import LpmTable


def prefix(text: str) -> IPv4Prefix:
    return IPv4Prefix.parse(text)


def addr(text: str) -> IPv4Address:
    return IPv4Address.parse(text)


def test_empty_lookup():
    assert LpmTable().lookup(addr("1.2.3.4")) is None


def test_exact_insert_get_remove():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/24"), "a")
    assert table.get(prefix("10.0.0.0/24")) == "a"
    assert table.get(prefix("10.0.0.0/25")) is None
    assert table.remove(prefix("10.0.0.0/24"))
    assert table.get(prefix("10.0.0.0/24")) is None
    assert not table.remove(prefix("10.0.0.0/24"))


def test_longest_match_wins():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), "big")
    table.insert(prefix("10.1.0.0/16"), "mid")
    table.insert(prefix("10.1.2.0/24"), "small")
    assert table.lookup(addr("10.1.2.3")).value == "small"
    assert table.lookup(addr("10.1.9.9")).value == "mid"
    assert table.lookup(addr("10.9.9.9")).value == "big"
    assert table.lookup(addr("11.0.0.1")) is None


def test_default_route():
    table = LpmTable()
    table.insert(prefix("0.0.0.0/0"), "default")
    table.insert(prefix("10.0.0.0/8"), "ten")
    assert table.lookup(addr("200.0.0.1")).value == "default"
    assert table.lookup(addr("10.0.0.1")).value == "ten"


def test_replace_value():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/24"), "old")
    table.insert(prefix("10.0.0.0/24"), "new")
    assert len(table) == 1
    assert table.get(prefix("10.0.0.0/24")) == "new"


def test_lookup_all_orders_short_to_long():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), 8)
    table.insert(prefix("10.1.0.0/16"), 16)
    table.insert(prefix("10.1.2.0/24"), 24)
    values = [e.value for e in table.lookup_all(addr("10.1.2.3"))]
    assert values == [8, 16, 24]


def test_covered_by():
    table = LpmTable()
    table.insert(prefix("10.1.0.0/24"), 1)
    table.insert(prefix("10.1.1.0/24"), 2)
    table.insert(prefix("10.2.0.0/24"), 3)
    covered = {str(e.prefix) for e in table.covered_by(prefix("10.1.0.0/16"))}
    assert covered == {"10.1.0.0/24", "10.1.1.0/24"}


def test_entries_iteration_and_len():
    table = LpmTable()
    for index in range(50):
        table.insert(prefix(f"10.{index}.0.0/16"), index)
    assert len(table) == 50
    assert {e.value for e in table.entries()} == set(range(50))


def test_remove_prunes_nodes():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/30"), "x")
    table.remove(prefix("10.0.0.0/30"))
    # Root should have no children left after pruning.
    assert table._root.children == [None, None]


def test_clear():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), 1)
    table.clear()
    assert len(table) == 0
    assert table.lookup(addr("10.0.0.1")) is None


def test_contains():
    table = LpmTable()
    table.insert(prefix("10.0.0.0/8"), 1)
    assert prefix("10.0.0.0/8") in table
    assert prefix("10.0.0.0/9") not in table


prefixes_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(prefixes_st, st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_matches_naive_reference(pairs, probe):
    """The trie agrees with a brute-force longest-match search."""
    table = LpmTable()
    model: dict[IPv4Prefix, int] = {}
    for index, (value, length) in enumerate(pairs):
        p = IPv4Prefix.from_address(IPv4Address(value), length)
        table.insert(p, index)
        model[p] = index
    address = IPv4Address(probe)
    matches = [p for p in model if p.contains_address(address)]
    expected = max(matches, key=lambda p: p.length, default=None)
    got = table.lookup(address)
    if expected is None:
        assert got is None
    else:
        assert got is not None
        assert got.prefix.length == expected.length
        assert got.value == model[expected]


@settings(max_examples=40, deadline=None)
@given(prefixes_st)
def test_insert_remove_restores_empty(pairs):
    table = LpmTable()
    inserted = []
    for index, (value, length) in enumerate(pairs):
        p = IPv4Prefix.from_address(IPv4Address(value), length)
        table.insert(p, index)
        inserted.append(p)
    for p in set(inserted):
        assert table.remove(p)
    assert len(table) == 0
    assert table._root.children == [None, None]
