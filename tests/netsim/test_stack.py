"""Network-stack tests: ARP, forwarding, policy rules, hooks, ICMP."""

import pytest

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.frames import (
    EtherType,
    EthernetFrame,
    IcmpMessage,
    IcmpType,
    IpProto,
    IPv4Packet,
    UdpDatagram,
)
from repro.netsim.link import Link, Port
from repro.netsim.stack import (
    KernelRoute,
    NetworkStack,
    RoutingRule,
)


def build_pair(scheduler, latency=0.001):
    """Two hosts on a point-to-point link: 10.0.0.1 <-> 10.0.0.2."""
    a = NetworkStack(scheduler, "a")
    b = NetworkStack(scheduler, "b")
    port_a, port_b = Port("a0"), Port("b0")
    Link(scheduler, port_a, port_b, latency=latency)
    a.add_interface("eth0", MacAddress.parse("02:00:00:00:00:0a"), port_a)
    b.add_interface("eth0", MacAddress.parse("02:00:00:00:00:0b"), port_b)
    a.add_address("eth0", IPv4Address.parse("10.0.0.1"), 24)
    b.add_address("eth0", IPv4Address.parse("10.0.0.2"), 24)
    return a, b


def test_ping_over_link(scheduler):
    a, b = build_pair(scheduler)
    replies = []
    a.on_icmp(lambda packet, icmp: replies.append((packet, icmp)))
    a.send_ip(IPv4Packet(
        src=IPv4Address.parse("10.0.0.1"),
        dst=IPv4Address.parse("10.0.0.2"),
        proto=IpProto.ICMP,
        payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST, sequence=1),
    ))
    scheduler.run_for(2)
    assert len(replies) == 1
    packet, icmp = replies[0]
    assert icmp.icmp_type == IcmpType.ECHO_REPLY
    assert str(packet.src) == "10.0.0.2"


def test_arp_resolution_is_cached(scheduler):
    a, b = build_pair(scheduler)
    dst = IPv4Address.parse("10.0.0.2")
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"), dst=dst,
                         proto=IpProto.UDP, payload=UdpDatagram(1, 9)))
    scheduler.run_for(2)
    assert dst in a.arp_table
    assert a.arp_table[dst][0] == b.interfaces["eth0"].mac


def test_udp_delivery_and_port_unreachable(scheduler):
    a, b = build_pair(scheduler)
    received = []
    b.bind_udp(5000, lambda packet, dgram: received.append(dgram))
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("10.0.0.2"),
                         proto=IpProto.UDP,
                         payload=UdpDatagram(1234, 5000, b"hi")))
    scheduler.run_for(2)
    assert received and received[0].payload == b"hi"

    errors = []
    a.on_icmp(lambda packet, icmp: errors.append(icmp))
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("10.0.0.2"),
                         proto=IpProto.UDP,
                         payload=UdpDatagram(1234, 7777, b"x")))
    scheduler.run_for(2)
    assert errors and errors[0].icmp_type == IcmpType.DEST_UNREACHABLE


def test_forwarding_through_middle_hop(scheduler):
    """a -- r -- b, with static routes through the middle."""
    a = NetworkStack(scheduler, "a")
    r = NetworkStack(scheduler, "r")
    b = NetworkStack(scheduler, "b")
    pa, pr1 = Port(), Port()
    pr2, pb = Port(), Port()
    Link(scheduler, pa, pr1)
    Link(scheduler, pr2, pb)
    a.add_interface("eth0", MacAddress(0x02_01), pa)
    r.add_interface("eth0", MacAddress(0x02_02), pr1)
    r.add_interface("eth1", MacAddress(0x02_03), pr2)
    b.add_interface("eth0", MacAddress(0x02_04), pb)
    a.add_address("eth0", IPv4Address.parse("10.0.1.1"), 24)
    r.add_address("eth0", IPv4Address.parse("10.0.1.2"), 24)
    r.add_address("eth1", IPv4Address.parse("10.0.2.1"), 24)
    b.add_address("eth0", IPv4Address.parse("10.0.2.2"), 24)
    a.add_route(KernelRoute(prefix=IPv4Prefix.parse("10.0.2.0/24"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.1.2")))
    b.add_route(KernelRoute(prefix=IPv4Prefix.parse("10.0.1.0/24"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.2.1")))
    replies = []
    a.on_icmp(lambda packet, icmp: replies.append(icmp))
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.1.1"),
                         dst=IPv4Address.parse("10.0.2.2"),
                         proto=IpProto.ICMP,
                         payload=IcmpMessage(IcmpType.ECHO_REQUEST)))
    scheduler.run_for(3)
    assert replies and replies[0].icmp_type == IcmpType.ECHO_REPLY
    assert r.counters["forwarded"] >= 1


def test_ttl_exceeded_sourced_from_primary_address(scheduler):
    a, b = build_pair(scheduler)
    # Give b a second address; the *first* remains primary.
    b.add_address("eth0", IPv4Address.parse("10.0.0.99"), 24)
    b.forwarding = True
    errors = []
    a.on_icmp(lambda packet, icmp: errors.append((packet, icmp)))
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("99.9.9.9"),
                         proto=IpProto.UDP, payload=UdpDatagram(1, 2),
                         ttl=1))
    # Need a route at a to 99/8 via b.
    a.add_route(KernelRoute(prefix=IPv4Prefix.parse("99.0.0.0/8"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.0.2")))
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("99.9.9.9"),
                         proto=IpProto.UDP, payload=UdpDatagram(1, 2),
                         ttl=1))
    scheduler.run_for(3)
    assert errors
    packet, icmp = errors[-1]
    assert icmp.icmp_type == IcmpType.TIME_EXCEEDED
    assert str(packet.src) == "10.0.0.2"  # primary, not 10.0.0.99


def test_policy_rule_dmac_selects_table(scheduler):
    """The vBGP mechanism: frames to a virtual MAC use its own table."""
    a, b = build_pair(scheduler)
    vmac = MacAddress.parse("02:7f:00:00:00:05")
    b.interfaces["eth0"].extra_macs.add(vmac)
    b.forwarding = True
    # Table 100 routes 99/8 back toward a; main table has no route.
    b.add_route(KernelRoute(prefix=IPv4Prefix.parse("99.0.0.0/8"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.0.1")),
                table_id=100)
    b.add_rule(RoutingRule(priority=10, table=100, match_dmac=vmac))
    # Send a frame directly to the vmac.
    packet = IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                        dst=IPv4Address.parse("99.1.2.3"),
                        proto=IpProto.UDP, payload=UdpDatagram(5, 6))
    a.interfaces["eth0"].send_frame(EthernetFrame(
        src=a.interfaces["eth0"].mac, dst=vmac,
        ethertype=EtherType.IPV4, payload=packet,
    ))
    scheduler.run_for(2)
    assert b.counters["forwarded"] == 1
    assert b.counters["dropped_no_route"] == 0
    # Without the dmac (normal MAC), the main table has no route → drop.
    a.interfaces["eth0"].send_frame(EthernetFrame(
        src=a.interfaces["eth0"].mac, dst=b.interfaces["eth0"].mac,
        ethertype=EtherType.IPV4, payload=packet,
    ))
    scheduler.run_for(2)
    assert b.counters["dropped_no_route"] == 1


def test_proxy_arp_answers_with_configured_mac(scheduler):
    a, b = build_pair(scheduler)
    vip = IPv4Address.parse("127.65.0.1")
    vmac = MacAddress.parse("02:7f:00:00:00:01")
    b.add_proxy_arp("eth0", vip, vmac)
    a.send_ip_via(
        IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                   dst=IPv4Address.parse("8.8.8.8"),
                   proto=IpProto.UDP, payload=UdpDatagram(1, 2)),
        next_hop=vip, out_iface="eth0",
    )
    scheduler.run_for(2)
    assert a.arp_table[vip][0] == vmac


def test_frames_to_foreign_macs_ignored(scheduler):
    a, b = build_pair(scheduler)
    packet = IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                        dst=IPv4Address.parse("10.0.0.2"),
                        proto=IpProto.UDP, payload=UdpDatagram(1, 2))
    a.interfaces["eth0"].send_frame(EthernetFrame(
        src=a.interfaces["eth0"].mac,
        dst=MacAddress.parse("02:99:99:99:99:99"),
        ethertype=EtherType.IPV4, payload=packet,
    ))
    scheduler.run_for(2)
    assert b.counters["rx_packets"] == 0


def test_ingress_hook_can_drop(scheduler):
    a, b = build_pair(scheduler)
    b.ingress_hooks.append(lambda frame, iface: None)
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("10.0.0.2"),
                         proto=IpProto.UDP, payload=UdpDatagram(1, 2)))
    scheduler.run_for(2)
    # The ARP request itself is also dropped by the hook → ARP timeout.
    assert b.counters["rx_packets"] == 0
    assert b.counters["dropped_hook"] >= 1


def test_egress_hook_can_rewrite_source_mac(scheduler):
    a, b = build_pair(scheduler)
    spoof = MacAddress.parse("02:7f:00:00:00:42")

    def rewrite(frame, iface):
        if frame.ethertype == EtherType.IPV4:
            return EthernetFrame(src=spoof, dst=frame.dst,
                                 ethertype=frame.ethertype,
                                 payload=frame.payload)
        return frame

    seen_src = []
    b.ingress_hooks.append(
        lambda frame, iface: (seen_src.append(frame.src), frame)[1]
    )
    a.egress_hooks.append(rewrite)
    a.add_static_arp(IPv4Address.parse("10.0.0.2"),
                     b.interfaces["eth0"].mac, "eth0")
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("10.0.0.2"),
                         proto=IpProto.UDP, payload=UdpDatagram(1, 2)))
    scheduler.run_for(2)
    assert spoof in seen_src


def test_interface_down_blocks_traffic(scheduler):
    a, b = build_pair(scheduler)
    b.interfaces["eth0"].up = False
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("10.0.0.2"),
                         proto=IpProto.UDP, payload=UdpDatagram(1, 2)))
    scheduler.run_for(3)
    assert b.counters["rx_packets"] == 0
    assert a.counters["arp_timeouts"] == 1


def test_remove_interface_drops_routes(scheduler):
    a, _b = build_pair(scheduler)
    a.add_route(KernelRoute(prefix=IPv4Prefix.parse("99.0.0.0/8"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.0.2")))
    a.remove_interface("eth0")
    assert "eth0" not in a.interfaces
    assert a.tables[254].lookup(IPv4Address.parse("99.1.1.1")) is None


def test_duplicate_interface_rejected(scheduler):
    a, _b = build_pair(scheduler)
    with pytest.raises(ValueError):
        a.add_interface("eth0", MacAddress(1), Port())


def test_route_via_unknown_interface_rejected(scheduler):
    a = NetworkStack(scheduler, "x")
    with pytest.raises(ValueError):
        a.add_route(KernelRoute(prefix=IPv4Prefix.parse("99.0.0.0/8"),
                                out_iface="nope"))


def test_local_delivery_without_interface_loop(scheduler):
    a, _b = build_pair(scheduler)
    received = []
    a.bind_udp(8080, lambda packet, dgram: received.append(packet))
    a.send_ip(IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                         dst=IPv4Address.parse("10.0.0.1"),
                         proto=IpProto.UDP, payload=UdpDatagram(1, 8080)))
    scheduler.run_for(1)
    assert len(received) == 1


def test_rule_priority_order(scheduler):
    a, b = build_pair(scheduler)
    b.forwarding = True
    # Two rules match; the lower-priority number must win.
    b.add_route(KernelRoute(prefix=IPv4Prefix.parse("99.0.0.0/8"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.0.1")),
                table_id=100)
    b.add_route(KernelRoute(prefix=IPv4Prefix.parse("99.0.0.0/8"),
                            out_iface="eth0",
                            next_hop=IPv4Address.parse("10.0.0.99")),
                table_id=200)
    b.add_rule(RoutingRule(priority=20, table=200))
    b.add_rule(RoutingRule(priority=10, table=100))
    packet = IPv4Packet(src=IPv4Address.parse("10.0.0.1"),
                        dst=IPv4Address.parse("99.0.0.1"),
                        proto=IpProto.UDP, payload=UdpDatagram(1, 2))
    route = b.lookup_route(packet)
    assert route is not None
    assert str(route.next_hop) == "10.0.0.1"
