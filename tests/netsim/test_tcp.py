"""Simplified-TCP tests: handshake, transfer, loss recovery, throughput."""

import pytest

from repro.netsim.addr import IPv4Address, MacAddress
from repro.netsim.link import Link, Port
from repro.netsim.stack import NetworkStack
from repro.netsim.tcp import TcpSegment, run_iperf
from repro.sim import Scheduler


def build_pair(scheduler, latency=0.005, bandwidth=None, loss=0.0):
    a = NetworkStack(scheduler, "a")
    b = NetworkStack(scheduler, "b")
    pa, pb = Port(), Port()
    Link(scheduler, pa, pb, latency=latency, bandwidth_bps=bandwidth,
         loss=loss, queue_limit=64)
    a.add_interface("eth0", MacAddress(0x02_01), pa)
    b.add_interface("eth0", MacAddress(0x02_02), pb)
    a.add_address("eth0", IPv4Address.parse("10.0.0.1"), 24)
    b.add_address("eth0", IPv4Address.parse("10.0.0.2"), 24)
    return a, b


def test_segment_roundtrip():
    segment = TcpSegment(src_port=4000, dst_port=5201, seq=1448, ack=0,
                         flags=2, payload_len=1448)
    decoded = TcpSegment.decode(segment.encode())
    assert decoded == segment
    assert len(segment.encode()) == 16 + 1448


def test_segment_too_short():
    with pytest.raises(ValueError):
        TcpSegment.decode(b"\x00" * 4)


def test_transfer_completes(scheduler):
    a, b = build_pair(scheduler)
    stats = run_iperf(scheduler, a, IPv4Address.parse("10.0.0.1"),
                      b, IPv4Address.parse("10.0.0.2"),
                      total_bytes=200_000)
    assert stats.bytes_acked == 200_000
    assert stats.throughput_bps > 0


def test_throughput_bounded_by_bandwidth(scheduler):
    a, b = build_pair(scheduler, latency=0.005, bandwidth=10_000_000.0)
    stats = run_iperf(scheduler, a, IPv4Address.parse("10.0.0.1"),
                      b, IPv4Address.parse("10.0.0.2"),
                      total_bytes=500_000)
    assert stats.bytes_acked == 500_000
    assert stats.throughput_bps <= 10_000_000.0


def test_higher_rtt_lowers_throughput():
    results = []
    for latency in (0.002, 0.040):
        sched = Scheduler()
        a, b = build_pair(sched, latency=latency)
        stats = run_iperf(sched, a, IPv4Address.parse("10.0.0.1"),
                          b, IPv4Address.parse("10.0.0.2"),
                          total_bytes=300_000)
        assert stats.bytes_acked == 300_000
        results.append(stats.throughput_bps)
    assert results[0] > results[1]


def test_recovers_from_loss(scheduler):
    a, b = build_pair(scheduler, loss=0.02)
    stats = run_iperf(scheduler, a, IPv4Address.parse("10.0.0.1"),
                      b, IPv4Address.parse("10.0.0.2"),
                      total_bytes=150_000, timeout=300.0)
    assert stats.bytes_acked == 150_000
    assert stats.retransmits > 0


def test_rtt_estimate_tracks_link(scheduler):
    a, b = build_pair(scheduler, latency=0.025)
    stats = run_iperf(scheduler, a, IPv4Address.parse("10.0.0.1"),
                      b, IPv4Address.parse("10.0.0.2"),
                      total_bytes=100_000)
    assert 0.04 <= stats.rtt_estimate <= 0.2
