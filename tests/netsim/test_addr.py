"""Address-type tests, including hypothesis round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addr import (
    AddressError,
    IPv4Address,
    IPv4Prefix,
    IPv6Address,
    IPv6Prefix,
    MacAddress,
    parse_address,
    parse_prefix,
)


class TestMacAddress:
    def test_parse_and_format(self):
        mac = MacAddress.parse("02:7f:00:00:00:01")
        assert str(mac) == "02:7f:00:00:00:01"
        assert mac.value == 0x027F00000001

    def test_parse_dash_separator(self):
        assert MacAddress.parse("aa-bb-cc-dd-ee-ff") == MacAddress.parse(
            "aa:bb:cc:dd:ee:ff"
        )

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert str(MacAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"

    def test_multicast_bit(self):
        assert MacAddress.parse("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.parse("02:00:00:00:00:01").is_multicast

    def test_locally_administered(self):
        assert MacAddress.parse("02:00:00:00:00:01").is_locally_administered

    def test_ordering_and_hash(self):
        a = MacAddress(1)
        b = MacAddress(2)
        assert a < b
        assert len({a, MacAddress(1)}) == 1

    @pytest.mark.parametrize("bad", ["", "aa:bb", "gg:00:00:00:00:00",
                                     "aa:bb:cc:dd:ee:ff:00"])
    def test_malformed(self, bad):
        with pytest.raises(AddressError):
            MacAddress.parse(bad)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_roundtrip(self, value):
        assert MacAddress.parse(str(MacAddress(value))).value == value


class TestIPv4Address:
    def test_parse_and_format(self):
        address = IPv4Address.parse("184.164.224.1")
        assert str(address) == "184.164.224.1"

    def test_packed_roundtrip(self):
        address = IPv4Address.parse("10.1.2.3")
        assert IPv4Address.from_packed(address.packed()) == address

    def test_arithmetic(self):
        assert str(IPv4Address.parse("10.0.0.1") + 5) == "10.0.0.6"

    def test_private_and_loopback(self):
        assert IPv4Address.parse("10.1.1.1").is_private
        assert IPv4Address.parse("192.168.0.1").is_private
        assert IPv4Address.parse("127.65.0.1").is_loopback
        assert not IPv4Address.parse("8.8.8.8").is_private

    @pytest.mark.parametrize(
        "bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1", "01.2.3.4", "a.b.c.d", ""]
    )
    def test_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Address.parse(bad)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip(self, value):
        assert IPv4Address.parse(str(IPv4Address(value))).value == value

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1),
           st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_ordering_matches_values(self, a, b):
        assert (IPv4Address(a) < IPv4Address(b)) == (a < b)


class TestIPv6Address:
    def test_parse_full_form(self):
        address = IPv6Address.parse("2804:269c:0:0:0:0:0:1")
        assert str(address) == "2804:269c::1"

    def test_parse_compressed(self):
        assert IPv6Address.parse("::1").value == 1
        assert IPv6Address.parse("2804:269c::").value == 0x2804269C << 96

    def test_double_compression_rejected(self):
        with pytest.raises(AddressError):
            IPv6Address.parse("1::2::3")

    def test_format_compresses_longest_run(self):
        assert str(IPv6Address.parse("1:0:0:2:0:0:0:3")) == "1:0:0:2::3"

    @given(st.integers(min_value=0, max_value=(1 << 128) - 1))
    def test_roundtrip(self, value):
        assert IPv6Address.parse(str(IPv6Address(value))).value == value


class TestPrefixes:
    def test_parse_and_format(self):
        prefix = IPv4Prefix.parse("184.164.224.0/19")
        assert str(prefix) == "184.164.224.0/19"
        assert prefix.num_addresses == 8192

    def test_host_bits_rejected(self):
        with pytest.raises(AddressError):
            IPv4Prefix.parse("10.0.0.1/24")

    def test_from_address_masks(self):
        prefix = IPv4Prefix.from_address(IPv4Address.parse("10.1.2.3"), 24)
        assert str(prefix) == "10.1.2.0/24"

    def test_contains_address(self):
        prefix = IPv4Prefix.parse("10.0.0.0/8")
        assert prefix.contains_address(IPv4Address.parse("10.255.0.1"))
        assert not prefix.contains_address(IPv4Address.parse("11.0.0.1"))

    def test_contains_prefix(self):
        big = IPv4Prefix.parse("10.0.0.0/8")
        small = IPv4Prefix.parse("10.1.0.0/16")
        assert big.contains_prefix(small)
        assert not small.contains_prefix(big)
        assert big.contains_prefix(big)

    def test_subnets(self):
        subnets = list(IPv4Prefix.parse("10.0.0.0/22").subnets(24))
        assert [str(s) for s in subnets] == [
            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
        ]

    def test_address_at(self):
        prefix = IPv4Prefix.parse("10.0.0.0/24")
        assert str(prefix.address_at(1)) == "10.0.0.1"
        with pytest.raises(AddressError):
            prefix.address_at(256)

    def test_zero_length_prefix(self):
        default = IPv4Prefix.parse("0.0.0.0/0")
        assert default.contains_address(IPv4Address.parse("200.1.2.3"))

    def test_ipv6_prefix(self):
        prefix = IPv6Prefix.parse("2804:269c::/32")
        assert prefix.contains_address(IPv6Address.parse("2804:269c::1"))

    def test_parse_prefix_dispatch(self):
        assert isinstance(parse_prefix("10.0.0.0/8"), IPv4Prefix)
        assert isinstance(parse_prefix("2804:269c::/32"), IPv6Prefix)
        assert isinstance(parse_address("::1"), IPv6Address)

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_from_address_roundtrip(self, value, length):
        prefix = IPv4Prefix.from_address(IPv4Address(value), length)
        assert IPv4Prefix.parse(str(prefix)) == prefix
        assert prefix.contains_address(IPv4Address(value))

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=1, max_value=32),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
    )
    def test_containment_consistency(self, value, length, probe):
        prefix = IPv4Prefix.from_address(IPv4Address(value), length)
        address = IPv4Address(probe)
        contained = prefix.contains_address(address)
        host_prefix = IPv4Prefix.from_address(address, 32)
        assert contained == prefix.contains_prefix(host_prefix)
