"""Wire-format tests for Ethernet/ARP/IPv4/ICMP/UDP, with hypothesis
round-trip properties."""

import pytest
from hypothesis import given, strategies as st

from repro.netsim.addr import IPv4Address, MacAddress
from repro.netsim.frames import (
    ArpOp,
    ArpPacket,
    EtherType,
    EthernetFrame,
    IcmpMessage,
    IcmpType,
    IpProto,
    IPv4Packet,
    UdpDatagram,
    _inet_checksum,
)

MAC_A = MacAddress.parse("02:00:00:00:00:01")
MAC_B = MacAddress.parse("02:00:00:00:00:02")
IP_A = IPv4Address.parse("10.0.0.1")
IP_B = IPv4Address.parse("10.0.0.2")


class TestArp:
    def test_roundtrip_request(self):
        arp = ArpPacket(op=ArpOp.REQUEST, sender_mac=MAC_A, sender_ip=IP_A,
                        target_mac=MacAddress(0), target_ip=IP_B)
        assert ArpPacket.decode(arp.encode()) == arp

    def test_roundtrip_reply(self):
        arp = ArpPacket(op=ArpOp.REPLY, sender_mac=MAC_B, sender_ip=IP_B,
                        target_mac=MAC_A, target_ip=IP_A)
        assert ArpPacket.decode(arp.encode()) == arp

    def test_wire_size(self):
        arp = ArpPacket(op=ArpOp.REQUEST, sender_mac=MAC_A, sender_ip=IP_A,
                        target_mac=MacAddress(0), target_ip=IP_B)
        assert len(arp.encode()) == ArpPacket.WIRE_SIZE

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            ArpPacket.decode(b"\x00" * 10)


class TestIcmp:
    def test_roundtrip(self):
        icmp = IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST, identifier=7,
                           sequence=42, payload=b"hello")
        assert IcmpMessage.decode(icmp.encode()) == icmp

    def test_checksum_is_valid(self):
        data = IcmpMessage(icmp_type=IcmpType.ECHO_REPLY).encode()
        assert _inet_checksum(data) == 0

    def test_time_exceeded_carries_quote(self):
        quoted = b"\x45\x00" + b"\x00" * 26
        icmp = IcmpMessage(icmp_type=IcmpType.TIME_EXCEEDED, payload=quoted)
        assert IcmpMessage.decode(icmp.encode()).payload == quoted


class TestUdp:
    def test_roundtrip(self):
        udp = UdpDatagram(src_port=33434, dst_port=53, payload=b"query")
        assert UdpDatagram.decode(udp.encode()) == udp

    def test_length_mismatch_rejected(self):
        data = UdpDatagram(src_port=1, dst_port=2, payload=b"xy").encode()
        with pytest.raises(ValueError):
            UdpDatagram.decode(data + b"extra")


class TestIPv4:
    def make(self, **kwargs) -> IPv4Packet:
        defaults = dict(src=IP_A, dst=IP_B, proto=IpProto.UDP,
                        payload=UdpDatagram(src_port=1, dst_port=2,
                                            payload=b"data"))
        defaults.update(kwargs)
        return IPv4Packet(**defaults)

    def test_roundtrip_with_udp(self):
        packet = self.make()
        assert IPv4Packet.decode(packet.encode()) == packet

    def test_roundtrip_with_icmp(self):
        packet = self.make(
            proto=IpProto.ICMP,
            payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
        )
        decoded = IPv4Packet.decode(packet.encode())
        assert isinstance(decoded.payload, IcmpMessage)

    def test_ttl_and_dscp_preserved(self):
        packet = self.make(ttl=3, dscp=46)
        decoded = IPv4Packet.decode(packet.encode())
        assert decoded.ttl == 3
        assert decoded.dscp == 46

    def test_decrement_ttl(self):
        assert self.make(ttl=64).decrement_ttl().ttl == 63

    def test_size_accounts_header(self):
        packet = self.make(payload=b"x" * 100)
        assert packet.size == 120

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            IPv4Packet.decode(b"\x45" + b"\x00" * 10)

    def test_length_field_checked(self):
        data = self.make().encode()
        with pytest.raises(ValueError):
            IPv4Packet.decode(data + b"pad")


class TestEthernet:
    def test_roundtrip_ip(self):
        frame = EthernetFrame(
            src=MAC_A, dst=MAC_B, ethertype=EtherType.IPV4,
            payload=IPv4Packet(src=IP_A, dst=IP_B, proto=IpProto.UDP,
                               payload=UdpDatagram(1, 2, b"x")),
        )
        assert EthernetFrame.decode(frame.encode()) == frame

    def test_roundtrip_vlan_tagged(self):
        frame = EthernetFrame(
            src=MAC_A, dst=MAC_B, ethertype=EtherType.IPV4,
            payload=b"\x00" * 20, vlan=100,
        )
        decoded = EthernetFrame.decode(frame.encode())
        assert decoded.vlan == 100

    def test_roundtrip_arp(self):
        frame = EthernetFrame(
            src=MAC_A, dst=MacAddress.broadcast(), ethertype=EtherType.ARP,
            payload=ArpPacket(op=ArpOp.REQUEST, sender_mac=MAC_A,
                              sender_ip=IP_A, target_mac=MacAddress(0),
                              target_ip=IP_B),
        )
        decoded = EthernetFrame.decode(frame.encode())
        assert isinstance(decoded.payload, ArpPacket)

    def test_vlan_out_of_range(self):
        frame = EthernetFrame(src=MAC_A, dst=MAC_B,
                              ethertype=EtherType.IPV4, payload=b"",
                              vlan=5000)
        with pytest.raises(ValueError):
            frame.encode()

    def test_size_includes_vlan_tag(self):
        plain = EthernetFrame(src=MAC_A, dst=MAC_B,
                              ethertype=EtherType.IPV4, payload=b"x" * 10)
        tagged = EthernetFrame(src=MAC_A, dst=MAC_B,
                               ethertype=EtherType.IPV4, payload=b"x" * 10,
                               vlan=7)
        assert tagged.size == plain.size + 4


macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MacAddress)
ips = st.integers(min_value=0, max_value=(1 << 32) - 1).map(IPv4Address)


@given(src=ips, dst=ips, ttl=st.integers(min_value=1, max_value=255),
       payload=st.binary(max_size=64))
def test_ipv4_roundtrip_property(src, dst, ttl, payload):
    packet = IPv4Packet(src=src, dst=dst, proto=IpProto.TCP,
                        payload=payload, ttl=ttl)
    assert IPv4Packet.decode(packet.encode()) == packet


@given(src=macs, dst=macs, payload=st.binary(max_size=64),
       vlan=st.one_of(st.none(), st.integers(min_value=0, max_value=4095)))
def test_ethernet_roundtrip_property(src, dst, payload, vlan):
    frame = EthernetFrame(src=src, dst=dst, ethertype=EtherType.IPV4,
                          payload=payload, vlan=vlan)
    decoded = EthernetFrame.decode(frame.encode())
    assert decoded.src == src and decoded.dst == dst
    assert decoded.vlan == vlan


@given(data=st.binary(max_size=128).filter(lambda d: len(d) % 2 == 0))
def test_checksum_verification_property(data):
    """Appending the checksum of (16-bit-aligned) data verifies to zero —
    protocols always place the checksum at an even offset."""
    checksum = _inet_checksum(data)
    combined = data + checksum.to_bytes(2, "big")
    assert _inet_checksum(combined) == 0
