"""Netlink-API tests: the request/response surface and its quirks."""

import pytest

from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Port
from repro.netsim.netlink import (
    Netlink,
    NetlinkError,
    RouteRecord,
    RuleRecord,
)
from repro.netsim.stack import NetworkStack


@pytest.fixture
def netlink(scheduler):
    stack = NetworkStack(scheduler, "host")
    stack.add_interface("eth0", MacAddress(0x02_01), Port())
    stack.add_interface("eth1", MacAddress(0x02_02), Port())
    return Netlink(stack)


def ip(text):
    return IPv4Address.parse(text)


def pfx(text):
    return IPv4Prefix.parse(text)


def test_add_and_dump_addresses(netlink):
    netlink.add_address("eth0", ip("10.0.0.1"), 24)
    netlink.add_address("eth0", ip("10.0.0.2"), 24)
    records = netlink.dump_addresses("eth0")
    assert [str(r.address) for r in records] == ["10.0.0.1", "10.0.0.2"]
    assert records[0].primary and not records[1].primary


def test_primary_is_first_added(netlink):
    """The kernel quirk the controller must work around (§5)."""
    netlink.add_address("eth0", ip("10.0.0.9"), 24)
    netlink.add_address("eth0", ip("10.0.0.1"), 24)
    records = netlink.dump_addresses("eth0")
    assert records[0].primary
    assert str(records[0].address) == "10.0.0.9"


def test_duplicate_address_rejected(netlink):
    netlink.add_address("eth0", ip("10.0.0.1"), 24)
    with pytest.raises(NetlinkError):
        netlink.add_address("eth0", ip("10.0.0.1"), 24)


def test_del_missing_address_rejected(netlink):
    with pytest.raises(NetlinkError):
        netlink.del_address("eth0", ip("10.0.0.1"))


def test_unknown_interface_rejected(netlink):
    with pytest.raises(NetlinkError):
        netlink.add_address("wlan0", ip("10.0.0.1"), 24)


def test_route_lifecycle(netlink):
    record = RouteRecord(table=100, prefix=pfx("99.0.0.0/8"),
                         out_iface="eth0", next_hop=None)
    netlink.add_route(record)
    assert record in netlink.dump_routes(100)
    with pytest.raises(NetlinkError):
        netlink.add_route(record)  # EEXIST
    netlink.del_route(100, pfx("99.0.0.0/8"))
    assert netlink.dump_routes(100) == []
    with pytest.raises(NetlinkError):
        netlink.del_route(100, pfx("99.0.0.0/8"))


def test_route_via_unknown_iface_rejected(netlink):
    with pytest.raises(NetlinkError):
        netlink.add_route(RouteRecord(table=254, prefix=pfx("99.0.0.0/8"),
                                      out_iface="nope", next_hop=None))


def test_rule_lifecycle(netlink):
    record = RuleRecord(priority=10, table=100, match_iif=None,
                        match_dst=None, match_src=None,
                        match_dmac=MacAddress(0x027F00000001))
    netlink.add_rule(record)
    assert record in netlink.dump_rules()
    with pytest.raises(NetlinkError):
        netlink.add_rule(record)
    netlink.del_rule(record)
    assert record not in netlink.dump_rules()


def test_default_rule_present(netlink):
    rules = netlink.dump_rules()
    assert any(r.priority == 32766 and r.table == 254 for r in rules)


def test_set_link(netlink):
    netlink.set_link("eth0", False)
    assert not netlink._stack.interfaces["eth0"].up
    netlink.set_link("eth0", True)
    assert netlink._stack.interfaces["eth0"].up


def test_list_tables(netlink):
    netlink.add_route(RouteRecord(table=1001, prefix=pfx("99.0.0.0/8"),
                                  out_iface="eth0", next_hop=None))
    assert 1001 in netlink.list_tables()


def test_request_counter(netlink):
    before = netlink.requests
    netlink.dump_rules()
    netlink.dump_addresses("eth0")
    assert netlink.requests == before + 2
