"""Property tests for the BGP wire codec (DESIGN.md §6e).

Round-trip — ``decode(encode(m)) == m`` — and re-encode idempotence over
arbitrary canonical-form messages from
:mod:`repro.conformance.strategies`, plus the same properties under
ADD-PATH (which changes NLRI parsing) and chunked delivery (framing must
not depend on TCP segmentation).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.messages import MessageDecoder, UpdateMessage
from repro.conformance import strategies as conf


def _decode_one(frame: bytes, addpath: bool = False):
    decoder = MessageDecoder()
    decoder.addpath = addpath
    decoder.feed(frame)
    message = decoder.next_message()
    assert message is not None, "decoder produced no message"
    assert decoder.next_message() is None, "trailing bytes after message"
    return message


@settings(max_examples=200, deadline=None)
@given(conf.messages())
def test_roundtrip(message):
    assert _decode_one(message.encode()) == message


@settings(max_examples=200, deadline=None)
@given(conf.messages())
def test_reencode_idempotent(message):
    wire = message.encode()
    assert _decode_one(wire).encode() == wire


@settings(max_examples=150, deadline=None)
@given(conf.update_messages(addpath=True))
def test_roundtrip_addpath(update):
    wire = update.encode(addpath=True)
    decoded = _decode_one(wire, addpath=True)
    assert decoded == update
    assert decoded.encode(addpath=True) == wire


@settings(max_examples=100, deadline=None)
@given(conf.messages(), st.data())
def test_roundtrip_survives_chunking(message, data):
    """Framing is independent of how the byte stream is segmented."""
    wire = message.encode()
    cut = data.draw(st.integers(min_value=0, max_value=len(wire)))
    decoder = MessageDecoder()
    decoder.feed(wire[:cut])
    early = decoder.next_message() if cut >= len(wire) else None
    decoder.feed(wire[cut:])
    decoded = early if early is not None else decoder.next_message()
    assert decoded == message


@settings(max_examples=100, deadline=None)
@given(st.lists(conf.messages(), min_size=1, max_size=4))
def test_back_to_back_messages(messages):
    """A stream of messages decodes to the same sequence, in order."""
    decoder = MessageDecoder()
    decoder.feed(b"".join(m.encode() for m in messages))
    decoded = list(decoder)
    assert decoded == messages


@settings(max_examples=150, deadline=None)
@given(conf.update_messages(addpath=False))
def test_update_structure(update):
    """Canonical updates keep the attributes-iff-NLRI shape."""
    assert isinstance(update, UpdateMessage)
    assert (update.attributes is not None) == bool(update.nlri)
    if update.nlri:
        assert update.attributes.next_hop is not None
