"""Invariant-checker tests: a healthy world passes, broken ones fail.

Each invariant in the catalog has at least one deliberately-broken
fixture it must catch — a checker that cannot fail proves nothing.
The world here is a single PoP with one upstream AS (a real external
speaker, so community propagation has a far end) and one ADD-PATH
experiment client.
"""

from types import SimpleNamespace

import pytest

from repro.bgp.attributes import Community, local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.conformance.invariants import (
    CATALOG,
    ConformanceContext,
    InvariantReport,
    run_invariants,
)
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.capabilities import ExperimentProfile
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry
from repro.vbgp.communities import announce_to_neighbor

EXP_PREFIX = IPv4Prefix.parse("184.164.224.0/24")
TUNNEL_IP = IPv4Address.parse("100.125.0.2")


@pytest.fixture
def world():
    """One PoP, one upstream speaker, one experiment, converged."""
    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="diff", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    port = pop.provision_neighbor("upstream", 65010, kind="peer")
    upstream = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65010, router_id=port.address)
    )
    upstream.attach_neighbor(
        NeighborConfig(
            name="to-pop", peer_asn=None, local_address=port.address
        ),
        port.channel,
    )
    ours, theirs = connect_pair(scheduler, rtt=0.001)
    pop.node.attach_experiment(
        name="x",
        asn=47065,
        prefixes=(EXP_PREFIX,),
        tunnel_ip=TUNNEL_IP,
        tunnel_mac=MacAddress.parse("02:aa:00:00:00:02"),
        channel=ours,
    )
    pop.control_enforcer.register_experiment(ExperimentProfile(
        name="x", asns=frozenset({47065}), prefixes=(EXP_PREFIX,),
    ))
    client = BgpSpeaker(
        scheduler, SpeakerConfig(asn=47065, router_id=TUNNEL_IP)
    )
    client.allow_own_asn_in = True
    client.attach_neighbor(
        NeighborConfig(
            name="to-pop",
            peer_asn=None,
            local_address=TUNNEL_IP,
            addpath=True,
        ),
        theirs,
    )
    scheduler.run_for(5)
    # Route churn from the upstream, plus one whitelisted announcement.
    generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=60, seed=7)
    gid = pop.node.upstreams["upstream"].virtual.global_id
    client.originate(local_route(
        EXP_PREFIX, next_hop=TUNNEL_IP,
        communities=(announce_to_neighbor(gid),),
    ))
    for update in generator.make_updates(120):
        pop.node._upstream_update("upstream", update)
        scheduler.run_until(scheduler.now)
    scheduler.run_for(5)
    return SimpleNamespace(
        scheduler=scheduler, pop=pop, upstream=upstream, client=client
    )


def _context(world, **overrides):
    base = dict(
        pops={"diff": world.pop},
        neighbor_speakers={"upstream": world.upstream},
        neighbor_pops={"upstream": "diff"},
    )
    base.update(overrides)
    return ConformanceContext(**base)


def test_healthy_world_passes_all_invariants(world):
    reports = run_invariants(_context(world))
    for name, report in reports.items():
        assert report.ok, report.format()
    # the fixtures must generate real evidence, not vacuous passes
    assert reports["vmac_bijectivity"].checked >= 1
    assert reports["addpath_completeness"].checked >= 20
    assert reports["community_propagation"].checked >= 1
    assert reports["kernel_consistency"].checked >= 20


def test_unknown_invariant_name_raises(world):
    with pytest.raises(KeyError):
        run_invariants(_context(world), names=["nonexistent"])


def test_catalog_is_complete():
    assert set(CATALOG) == {
        "vmac_bijectivity",
        "addpath_completeness",
        "community_propagation",
        "no_cross_experiment_leakage",
        "kernel_consistency",
        "no_withdrawal_loss_under_shed",
    }


def test_report_format_truncates():
    report = InvariantReport("demo")
    for index in range(50):
        report.fail(f"violation {index}")
    assert report.violation_count == 50
    assert len(report.violations) == 20
    assert "and 30 more" in report.format()


# -- deliberately-broken fixtures ------------------------------------------


def test_vmac_bijectivity_catches_wrong_mac(world):
    neighbor = world.pop.node.upstreams["upstream"]
    object.__setattr__(
        neighbor.virtual, "mac", MacAddress.parse("02:00:00:00:00:01")
    )
    report = CATALOG["vmac_bijectivity"](_context(world))
    assert not report.ok
    assert any("MAC" in violation for violation in report.violations)


def test_addpath_completeness_catches_missing_path_id(world):
    exp = world.pop.node.experiments["x"]
    assert exp.path_ids, "fixture produced no ADD-PATH allocations"
    exp.path_ids.pop(next(iter(exp.path_ids)))
    report = CATALOG["addpath_completeness"](_context(world))
    assert not report.ok
    assert "no ADD-PATH id" in report.violations[0]


def test_community_propagation_catches_missing_export(world):
    # a neighbor speaker that never received the whitelisted route
    empty = SimpleNamespace(best_route=lambda prefix: None)
    report = CATALOG["community_propagation"](
        _context(world, neighbor_speakers={"upstream": empty})
    )
    assert not report.ok
    assert "expected export" in report.violations[0]


def test_community_propagation_catches_control_leak(world):
    # a neighbor speaker whose copy still carries a control community
    leaked = local_route(
        EXP_PREFIX,
        next_hop=TUNNEL_IP,
        communities=(Community(47065, 1),),
    )
    leaky = SimpleNamespace(best_route=lambda prefix: leaked)
    report = CATALOG["community_propagation"](
        _context(world, neighbor_speakers={"upstream": leaky})
    )
    assert not report.ok
    assert any(
        "control communities" in violation
        for violation in report.violations
    )


def test_leakage_catches_foreign_prefix(world):
    foreign = IPv4Prefix.parse("184.164.240.0/24")
    view = SimpleNamespace(routes={
        0: local_route(foreign, next_hop=TUNNEL_IP)
    })
    clients = {
        "alpha": SimpleNamespace(pops={"diff": view}),
        "beta": SimpleNamespace(pops={}),
    }
    allocated = {
        "alpha": frozenset({EXP_PREFIX}),
        "beta": frozenset({foreign}),
    }
    report = CATALOG["no_cross_experiment_leakage"](
        _context(world, clients=clients, allocated=allocated)
    )
    assert not report.ok
    assert "allocated to another experiment" in report.violations[0]


def test_leakage_passes_own_prefix(world):
    view = SimpleNamespace(routes={
        0: local_route(EXP_PREFIX, next_hop=TUNNEL_IP)
    })
    clients = {"alpha": SimpleNamespace(pops={"diff": view})}
    allocated = {"alpha": frozenset({EXP_PREFIX})}
    report = CATALOG["no_cross_experiment_leakage"](
        _context(world, clients=clients, allocated=allocated)
    )
    assert report.ok


def test_kernel_consistency_catches_missing_route(world):
    neighbor = world.pop.node.upstreams["upstream"]
    table = world.pop.stack.tables[neighbor.virtual.table_id]
    prefix = next(iter({key[0] for key in neighbor.rib.keys()}))
    assert table.remove(prefix)
    report = CATALOG["kernel_consistency"](_context(world))
    assert not report.ok


def test_withdrawal_loss_invariant_is_vacuous_without_overload(world):
    report = CATALOG["no_withdrawal_loss_under_shed"](_context(world))
    assert report.ok
    assert report.checked == 0


def test_withdrawal_loss_invariant_catches_shed_withdrawal(world):
    from repro.overload import OverloadGovernor

    governor = OverloadGovernor(world.scheduler, scope="diff")
    world.pop.node.enable_overload(governor)
    queue = governor.queue_for("upstream")
    queue.stats.shed_withdrawals = 3
    report = CATALOG["no_withdrawal_loss_under_shed"](_context(world))
    assert not report.ok
    assert "withdrawals shed" in report.violations[0]


def test_withdrawal_loss_invariant_catches_unbalanced_ledger(world):
    from repro.overload import OverloadGovernor

    governor = OverloadGovernor(world.scheduler, scope="diff")
    world.pop.node.enable_overload(governor)
    queue = governor.queue_for("upstream")
    queue.stats.withdrawals_admitted = 5
    queue.stats.withdrawals_delivered = 4
    report = CATALOG["no_withdrawal_loss_under_shed"](_context(world))
    assert not report.ok
    assert "accounted for" in report.violations[0]


def test_kernel_consistency_catches_extra_route(world):
    from repro.netsim.stack import KernelRoute

    neighbor = world.pop.node.upstreams["upstream"]
    table = world.pop.stack.tables[neighbor.virtual.table_id]
    stray = IPv4Prefix.parse("203.0.113.0/24")
    assert not any(key[0] == stray for key in neighbor.rib.keys())
    table.insert(stray, KernelRoute(
        prefix=stray, out_iface="stray0", next_hop=TUNNEL_IP
    ))
    report = CATALOG["kernel_consistency"](_context(world))
    assert not report.ok
