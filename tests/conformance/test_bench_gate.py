"""Tests for ``scripts/check_bench_regression.py`` (the CI bench gate).

The acceptance criterion: the gate must fail on an injected >25%
synthetic regression, pass on identical metrics, tolerate movement
inside the band, and never gate on neutral counters.
"""

import importlib.util
import json
from pathlib import Path

_SCRIPT = (
    Path(__file__).resolve().parents[2]
    / "scripts"
    / "check_bench_regression.py"
)
_spec = importlib.util.spec_from_file_location("check_bench_regression",
                                               _SCRIPT)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def test_direction_inference():
    assert gate.metric_direction("max_sustainable_updates_per_s") == "higher"
    assert gate.metric_direction("packets_per_s") == "higher"
    assert gate.metric_direction("per_packet_us") == "lower"
    assert gate.metric_direction("corruption_worst_s") == "lower"
    assert gate.metric_direction("control_bytes_per_route") == "lower"
    assert gate.metric_direction("dict_backend_bytes_per_route") == "lower"
    assert gate.metric_direction("scenarios") == "neutral"
    assert gate.metric_direction("corruption_reconnects") == "neutral"
    assert gate.metric_direction("utilization_at_p99_pct") == "neutral"
    assert gate.metric_direction("speedup_x") == "neutral"
    assert gate.metric_direction("reduction_x") == "neutral"


def test_real_metrics_and_cpu_count_are_machine_properties():
    """Wall-clock metrics from real backends never gate absolutely —
    even when their names contain ``per_s``."""
    assert gate.metric_direction("real_mp4_updates_per_s") == "neutral"
    assert gate.metric_direction("real_sync_updates_per_s") == "neutral"
    assert gate.metric_direction("real_speedup_mp4") == "neutral"
    assert gate.metric_direction("cpu_count") == "neutral"


def test_identical_metrics_pass():
    metrics = {"packets_per_s": 1000.0, "per_packet_us": 20.0}
    regressions, notes = gate.compare_metrics(metrics, dict(metrics))
    assert regressions == []
    assert notes == []


def test_movement_inside_tolerance_passes():
    baseline = {"packets_per_s": 1000.0, "per_packet_us": 20.0}
    current = {"packets_per_s": 800.0, "per_packet_us": 24.0}  # ±20-ish%
    regressions, _ = gate.compare_metrics(baseline, current, tolerance=0.25)
    assert regressions == []


def test_throughput_drop_beyond_tolerance_regresses():
    baseline = {"packets_per_s": 1000.0}
    current = {"packets_per_s": 700.0}  # 30% drop
    regressions, _ = gate.compare_metrics(baseline, current, tolerance=0.25)
    assert len(regressions) == 1
    assert "packets_per_s" in regressions[0]


def test_latency_rise_beyond_tolerance_regresses():
    baseline = {"per_packet_us": 20.0}
    current = {"per_packet_us": 30.0}  # 50% rise
    regressions, _ = gate.compare_metrics(baseline, current, tolerance=0.25)
    assert len(regressions) == 1


def test_improvement_is_note_not_regression():
    baseline = {"packets_per_s": 1000.0}
    current = {"packets_per_s": 2000.0}
    regressions, notes = gate.compare_metrics(baseline, current)
    assert regressions == []
    assert any("refreshing the baseline" in note for note in notes)


def test_neutral_metrics_never_gate():
    baseline = {"scenarios": 7, "seeds": 5, "flap_reconnects": 2}
    current = {"scenarios": 1, "seeds": 50, "flap_reconnects": 99}
    regressions, _ = gate.compare_metrics(baseline, current)
    assert regressions == []


def test_missing_metric_regresses():
    regressions, _ = gate.compare_metrics({"packets_per_s": 1.0}, {})
    assert regressions and "missing" in regressions[0]


def test_metric_missing_from_fresh_run_names_the_metric():
    regressions, _ = gate.compare_metrics(
        {"packets_per_s": 1.0, "per_packet_us": 2.0},
        {"packets_per_s": 1.0},
    )
    assert len(regressions) == 1
    assert "'per_packet_us'" in regressions[0]
    assert "missing from fresh run" in regressions[0]


def test_metric_missing_from_baseline_regresses_with_refresh_hint():
    """The vice-versa direction: a fresh metric absent from the
    committed baseline means the baseline is stale."""
    regressions, _ = gate.compare_metrics(
        {"packets_per_s": 1.0},
        {"packets_per_s": 1.0, "speedup_x4_per_s": 9.0},
    )
    assert len(regressions) == 1
    assert "'speedup_x4_per_s'" in regressions[0]
    assert "missing from baseline" in regressions[0]
    assert "refresh" in regressions[0]


def test_neutral_metric_set_mismatch_is_note_only():
    regressions, notes = gate.compare_metrics(
        {"packets_per_s": 1.0, "scenarios": 7},
        {"packets_per_s": 1.0, "seeds": 5},
    )
    assert regressions == []
    assert any("'scenarios'" in note for note in notes)
    assert any("'seeds'" in note for note in notes)


def test_non_numeric_metric_is_message_not_traceback():
    regressions, _ = gate.compare_metrics(
        {"packets_per_s": 1000.0},
        {"packets_per_s": "fast"},
    )
    assert len(regressions) == 1
    assert "not numeric" in regressions[0]


def test_run_gate_reports_metric_mismatch_per_file(tmp_path):
    import io

    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    current_dir.mkdir()
    _write_bench(baseline_dir, "demo", {"updates_per_s": 5000.0})
    _write_bench(current_dir, "demo", {"other_per_s": 1.0})
    output = io.StringIO()
    assert gate.run_gate(
        baseline_dir, current_dir, names=("demo",), out=output
    ) == 1
    text = output.getvalue()
    assert "demo: REGRESSED" in text
    assert "missing from fresh run" in text
    assert "missing from baseline" in text
    assert "Traceback" not in text


def _write_bench(directory: Path, name: str, metrics: dict) -> None:
    payload = {"name": name, "metrics": metrics, "timestamp": 0.0}
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


def test_run_gate_exit_codes(tmp_path):
    import io

    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    current_dir.mkdir()
    metrics = {"updates_per_s": 5000.0, "flap_mean_s": 12.0}
    _write_bench(baseline_dir, "demo", metrics)

    # clean: identical fresh run
    _write_bench(current_dir, "demo", dict(metrics))
    assert gate.run_gate(baseline_dir, current_dir, names=("demo",)) == 0

    # the acceptance criterion: injected >25% synthetic regression fails
    _write_bench(current_dir, "demo",
                 {"updates_per_s": 5000.0 * 0.6, "flap_mean_s": 12.0})
    output = io.StringIO()
    assert gate.run_gate(
        baseline_dir, current_dir, names=("demo",), out=output
    ) == 1
    assert "REGRESSED" in output.getvalue()

    # missing fresh JSON is an infrastructure error, not a silent pass
    (current_dir / "BENCH_demo.json").unlink()
    assert gate.run_gate(baseline_dir, current_dir, names=("demo",)) == 2


def test_load_metrics_distinguishes_failure_modes(tmp_path):
    ok = tmp_path / "ok.json"
    ok.write_text(json.dumps({"metrics": {"a_per_s": 1.0}}))
    metrics, error = gate.load_metrics(ok)
    assert metrics == {"a_per_s": 1.0} and error is None

    metrics, error = gate.load_metrics(tmp_path / "absent.json")
    assert metrics is None and "MISSING" in error

    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{not json")
    metrics, error = gate.load_metrics(bad_json)
    assert metrics is None and "INVALID JSON" in error

    # Valid JSON whose top level is not an object used to escape as an
    # uncaught AttributeError; it must be a clear per-file message.
    top_level_list = tmp_path / "list.json"
    top_level_list.write_text(json.dumps([1, 2, 3]))
    metrics, error = gate.load_metrics(top_level_list)
    assert metrics is None
    assert "top-level JSON is list" in error and "list.json" in error

    no_metrics = tmp_path / "nometrics.json"
    no_metrics.write_text(json.dumps({"metrics": [1]}))
    metrics, error = gate.load_metrics(no_metrics)
    assert metrics is None and "'metrics' is list" in error


def test_run_gate_reports_non_object_json_with_exit_2(tmp_path):
    import io

    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    current_dir.mkdir()
    _write_bench(baseline_dir, "demo", {"updates_per_s": 100.0})
    (current_dir / "BENCH_demo.json").write_text(json.dumps([1, 2]))
    output = io.StringIO()
    assert gate.run_gate(
        baseline_dir, current_dir, names=("demo",), out=output
    ) == 2
    text = output.getvalue()
    assert "demo: fresh run INVALID" in text
    assert "expected an object" in text
    assert "Traceback" not in text


def test_fleet_convergence_is_gated_relatively():
    assert "fleet_convergence" in gate.GATED_BENCHMARKS
    regressions, notes = gate.check_relative_gates(
        "fleet_convergence",
        {"cpu_count": 4, "real_updates_per_s_fleet": 2.0},
    )
    assert len(regressions) == 1 and "2.00x < 5.0x" in regressions[0]
    regressions, _ = gate.check_relative_gates(
        "fleet_convergence",
        {"cpu_count": 4, "real_updates_per_s_fleet": 9.0},
    )
    assert regressions == []


def test_relative_gate_skips_below_core_floor():
    regressions, notes = gate.check_relative_gates(
        "shard_scaleout", {"cpu_count": 1, "real_speedup_mp4": 0.6}
    )
    assert regressions == []
    assert len(notes) == 1
    assert "skipped" in notes[0] and "1 core(s)" in notes[0]


def test_relative_gate_passes_on_enough_cores():
    regressions, notes = gate.check_relative_gates(
        "shard_scaleout", {"cpu_count": 8, "real_speedup_mp4": 2.4}
    )
    assert regressions == []
    assert len(notes) == 1 and "2.40x" in notes[0]


def test_relative_gate_fails_slow_speedup_on_enough_cores():
    regressions, _ = gate.check_relative_gates(
        "shard_scaleout", {"cpu_count": 4, "real_speedup_mp4": 1.2}
    )
    assert len(regressions) == 1
    assert "1.20x < 1.8x" in regressions[0]


def test_relative_gate_missing_metric_regresses():
    regressions, _ = gate.check_relative_gates(
        "shard_scaleout", {"cpu_count": 8}
    )
    assert len(regressions) == 1
    assert "missing" in regressions[0]


def test_relative_gate_unknown_bench_is_empty():
    assert gate.check_relative_gates("update_load", {"x": 1}) == ([], [])


def test_run_gate_applies_relative_gate(tmp_path):
    import io

    baseline_dir = tmp_path / "baselines"
    current_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    current_dir.mkdir()
    metrics = {
        "shards4_updates_per_s": 10000.0,
        "cpu_count": 8,
        "real_speedup_mp4": 1.2,
    }
    _write_bench(baseline_dir, "shard_scaleout", metrics)
    _write_bench(current_dir, "shard_scaleout", dict(metrics))
    output = io.StringIO()
    assert gate.run_gate(
        baseline_dir, current_dir, names=("shard_scaleout",), out=output
    ) == 1
    assert "relative gate 'real_speedup_mp4'" in output.getvalue()

    # On a small runner the same slow speedup only produces a notice.
    small = dict(metrics, cpu_count=1)
    _write_bench(baseline_dir, "shard_scaleout", small)
    _write_bench(current_dir, "shard_scaleout", dict(small))
    output = io.StringIO()
    assert gate.run_gate(
        baseline_dir, current_dir, names=("shard_scaleout",), out=output
    ) == 0
    assert "skipped relative gate" in output.getvalue()


def test_main_against_committed_baselines(tmp_path):
    """The committed baselines compared against themselves are clean."""
    baseline_dir = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    )
    exit_code = gate.run_gate(baseline_dir, baseline_dir)
    assert exit_code == 0


def test_committed_baselines_exist():
    baseline_dir = (
        Path(__file__).resolve().parents[2] / "benchmarks" / "baselines"
    )
    for name in gate.GATED_BENCHMARKS:
        assert (baseline_dir / f"BENCH_{name}.json").exists()
