"""Fuzzer harness + crash-corpus tests (DESIGN.md §6e).

The decoder must never raise anything but :class:`repro.bgp.errors`
structured errors on malformed bytes.  The committed corpus under
``tests/corpus/`` holds minimal repros of every crash the fuzzer has
found; replaying it is the regression test for those decoder fixes.
"""

import struct

from repro.bgp.errors import BgpError
from repro.bgp.messages import MessageDecoder
from repro.conformance.fuzzer import (
    CrashRecord,
    DecoderFuzzer,
    default_corpus_dir,
    load_corpus,
    seed_frames,
)

MARKER = b"\xff" * 16


def _frame(msg_type: int, body: bytes) -> bytes:
    return MARKER + struct.pack("!HB", 19 + len(body), msg_type) + body


def test_seed_frames_are_all_clean():
    for frame, addpath in seed_frames():
        assert DecoderFuzzer.classify(frame, addpath) == "clean"


def test_fuzz_run_survives_mutations():
    report = DecoderFuzzer(seed=3).run(iterations=5000)
    assert report.ok, report.format()
    assert report.iterations == 5000
    # the mutators must actually exercise both outcomes
    assert report.clean_decodes > 0
    assert report.structured_errors > 0


def test_fuzz_run_is_deterministic():
    first = DecoderFuzzer(seed=11).run(iterations=1500)
    second = DecoderFuzzer(seed=11).run(iterations=1500)
    assert first.clean_decodes == second.clean_decodes
    assert first.structured_errors == second.structured_errors


def test_corpus_exists_and_replays_structured():
    """Every committed crash repro now raises a structured BGP error."""
    records = load_corpus()
    assert len(records) >= 5, "crash corpus went missing"
    for record in records:
        outcome = DecoderFuzzer.classify(record.frame, record.addpath)
        assert outcome == "structured", (
            f"corpus regression {record.digest}: {outcome} ({record.note})"
        )


def test_corpus_repros_raise_bgp_errors_directly():
    for record in load_corpus():
        decoder = MessageDecoder()
        decoder.addpath = record.addpath
        decoder.feed(record.frame)
        try:
            while decoder.next_message() is not None:
                pass
        except BgpError:
            return_ok = True
        else:
            return_ok = False
        assert return_ok, f"{record.digest} no longer raises"


def test_crash_record_json_roundtrip(tmp_path):
    record = CrashRecord(
        frame=b"\x01\x02\xff", addpath=True, error="boom", note="unit"
    )
    path = tmp_path / f"crash-{record.digest}.json"
    path.write_text(record.to_json())
    loaded = load_corpus(tmp_path)
    assert loaded == [record]


def test_truncated_capability_is_structured_not_crash():
    """The original fuzzer find: a lone capability code byte in OPEN."""
    body = struct.pack(
        "!BHH4sB", 4, 65010, 90, bytes([10, 0, 0, 1]), 3
    ) + bytes([2, 1, 0x40])
    assert DecoderFuzzer.classify(_frame(1, body), False) == "structured"


def test_update_attribute_overrun_is_structured():
    body = struct.pack("!H", 0) + struct.pack("!H", 200)
    assert DecoderFuzzer.classify(_frame(2, body), False) == "structured"


def test_default_corpus_dir_is_committed_location():
    assert default_corpus_dir().name == "corpus"
    assert default_corpus_dir().parent.name == "tests"
