"""``peering verify`` CLI tests: the §6e checkers over a live platform."""

import pytest

from repro.toolkit import ExperimentClient, ToolkitCli
from tests.conftest import approve_experiment


@pytest.fixture
def cli(small_world):
    scheduler, platform, internet = small_world
    approve_experiment(platform, "exp")
    client = ExperimentClient(scheduler, "exp", platform)
    for pop in platform.pops:
        client.openvpn_up(pop)
        client.bird_start(pop)
    scheduler.run_for(10)
    return ToolkitCli(client)


def test_verify_usage_listed(cli):
    assert "peering verify" in cli.run("peering bogus")


def test_verify_invariants_live_platform(cli):
    out = cli.run("peering verify invariants")
    for name in (
        "vmac_bijectivity",
        "addpath_completeness",
        "community_propagation",
        "no_cross_experiment_leakage",
        "kernel_consistency",
    ):
        assert f"{name}: ok" in out, out
    assert "VIOLATED" not in out


def test_verify_invariants_subset(cli):
    out = cli.run("peering verify invariants kernel_consistency")
    assert out.startswith("kernel_consistency: ok")
    assert "vmac_bijectivity" not in out


def test_verify_invariants_unknown_name(cli):
    out = cli.run("peering verify invariants bogus")
    assert out.startswith("error:")
    assert "unknown invariant" in out


def test_verify_codec(cli):
    out = cli.run("peering verify codec --frames 400 --seed 9")
    assert "-> OK" in out
    assert "corpus replays" in out


def test_verify_differential_small(cli):
    # The CLI defaults to the curated 16-combination lattice subsample
    # (the full lattice is 2**8 = 256 runs; --subsample 0 requests it).
    out = cli.run("peering verify differential --updates 40")
    assert "differential: ok" in out
    assert "16 flag combinations" in out


def test_verify_differential_subsample_option(cli):
    out = cli.run("peering verify differential --updates 40 --subsample 12")
    assert "differential: ok" in out
    assert "12 flag combinations" in out


def test_verify_differential_fulltable_workload(cli):
    out = cli.run(
        "peering verify differential --updates 30 --prefixes 300 "
        "--workload fulltable --subsample 11"
    )
    assert "differential: ok" in out
    assert "11 flag combinations" in out
    assert "workload=fulltable" in out


def test_verify_differential_shard_sweep(cli):
    out = cli.run("peering verify differential --updates 40 --shards 1,2,4")
    assert "differential: ok" in out
    assert "3 shard combinations" in out


def test_verify_differential_shard_sweep_prefix_partition(cli):
    out = cli.run(
        "peering verify differential --updates 40 --shards 1,2 "
        "--partition prefix"
    )
    assert "differential: ok" in out
    assert "2 shard combinations" in out


def test_verify_differential_backend_sweep(cli):
    out = cli.run(
        "peering verify differential --updates 40 --backend async "
        "--shards 2,4"
    )
    assert "differential: ok" in out
    # model/shards=1 reference + async at each requested count.
    assert "3 backend combinations" in out


def test_verify_differential_backend_mp(cli):
    out = cli.run(
        "peering verify differential --updates 30 --prefixes 200 "
        "--backend mp --shards 2"
    )
    assert "differential: ok" in out
    assert "2 backend combinations" in out


def test_verify_differential_backend_list(cli):
    out = cli.run(
        "peering verify differential --updates 30 --prefixes 200 "
        "--backend async,mp --shards 2"
    )
    assert "differential: ok" in out
    assert "3 backend combinations" in out


def test_verify_usage_mentions_shards(cli):
    assert "--shards" in cli.run("peering bogus")
    assert "--backend" in cli.run("peering bogus")


def test_verify_usage_mentions_workload(cli):
    out = cli.run("peering bogus")
    assert "--workload" in out
    assert "fulltable" in out


def test_verify_differential_unknown_workload(cli):
    out = cli.run("peering verify differential --workload bogus")
    assert out.startswith("error:")
    assert "unknown workload" in out


def test_verify_option_missing_value(cli):
    for option in ("--workload", "--updates", "--shards"):
        out = cli.run(f"peering verify differential {option}")
        assert out == f"error: {option} requires a value"
