"""Differential tests: perf-toggle combinations, identical output.

With eight toggles the full lattice is 256 combinations, so the quick
tests sweep curated subsamples (reference + every single-flag-on +
all-on + seeded interior points) on a small workload; the slow
acceptance tests run the CI-gate workload (≥5k updates) and the
full-table workload, including composed with ``shards=4``.  Two rigged
harnesses prove the comparison logic actually *detects* divergence —
a checker that cannot fail is not a checker.
"""

import pytest

from repro import perf
from repro.conformance.differential import (
    DifferentialHarness,
    TOGGLES,
    _RunResult,
    all_flag_combinations,
    combo_label,
    subsampled_flag_combinations,
)


def test_all_flag_combinations_shape():
    combos = all_flag_combinations()
    assert len(combos) == 2 ** len(TOGGLES) == 256
    assert combos[0] == {name: False for name in TOGGLES}  # reference
    assert len({tuple(sorted(c.items())) for c in combos}) == 256


def test_subsampled_combinations_curated_corners():
    combos = subsampled_flag_combinations(16, seed=3)
    assert len(combos) == 16
    assert combos[0] == {name: False for name in TOGGLES}  # reference first
    for name in TOGGLES:  # every single-flag-on combo present
        assert {**combos[0], name: True} in combos
    assert {name: True for name in TOGGLES} in combos  # all-on present
    assert len({tuple(sorted(c.items())) for c in combos}) == 16  # unique
    # deterministic for a given seed
    assert combos == subsampled_flag_combinations(16, seed=3)


def test_combo_label():
    assert combo_label({name: False for name in TOGGLES}) == "all_off"
    assert combo_label({"stride_lpm": True}) == "stride_lpm"


def test_differential_sweep_small():
    harness = DifferentialHarness(update_count=240, prefix_count=400)
    report = harness.run(subsample=16)
    assert report.ok, report.format()
    assert report.combinations == 16
    assert "ok" in report.format()


def test_differential_fulltable_small():
    """The full-table workload at reduced scale: table load + churn tail
    through every single-flag-on combination and the all-on config."""
    harness = DifferentialHarness(
        update_count=120, prefix_count=600, workload="fulltable"
    )
    report = harness.run(subsample=12)
    assert report.ok, report.format()
    assert report.workload == "fulltable"
    assert "workload=fulltable" in report.format()


def test_differential_fulltable_composed_with_shards():
    """The §6g flags must stay byte-identical when composed with the
    shard layer (acceptance criterion: shards=4)."""
    harness = DifferentialHarness(
        update_count=80, prefix_count=400, workload="fulltable"
    )
    with perf.flags(shards=4):
        report = harness.run(subsample=11)
    assert report.ok, report.format()


@pytest.mark.slow
def test_differential_sweep_acceptance():
    """The CI gate: byte-identical output on a >=5k-update workload."""
    harness = DifferentialHarness(update_count=5000)
    report = harness.run(subsample=32)
    assert report.ok, report.format()
    assert report.updates >= 5000
    assert report.combinations == 32


@pytest.mark.slow
def test_differential_full_lattice():
    """All 256 combinations on a small workload (nightly-sized)."""
    harness = DifferentialHarness(update_count=120, prefix_count=300)
    report = harness.run()
    assert report.ok, report.format()
    assert report.combinations == 256


@pytest.mark.slow
def test_differential_fulltable_acceptance():
    """Full-table differential at CI scale: 20k-prefix table + churn
    tail, subsampled lattice, plus the shards=4 composition."""
    harness = DifferentialHarness(
        update_count=2000, prefix_count=20000, workload="fulltable"
    )
    report = harness.run(subsample=12)
    assert report.ok, report.format()
    with perf.flags(shards=4):
        composed = harness.run(subsample=11)
    assert composed.ok, composed.format()


class _Rigged(DifferentialHarness):
    """Returns canned results so the comparison logic is testable."""

    def __init__(self, results):
        super().__init__(update_count=1)
        self._results = list(results)

    def _run_scenario(self):
        return self._results.pop(0)


def _result(structural=b"s", changes=b"c", wire=b"w"):
    return _RunResult(
        structural=structural,
        changes_to_experiment=changes,
        changes_to_upstream=changes,
        wire_to_experiment=wire,
        wire_to_upstream=wire,
    )


def test_detects_structural_divergence():
    combos = all_flag_combinations()[:3]
    rigged = _Rigged([_result(), _result(), _result(structural=b"DIFF")])
    report = rigged.run(combinations=combos)
    assert not report.ok
    assert any("Loc-RIB" in m for m in report.mismatches)
    assert combo_label(combos[2]) in report.mismatches[0]


def test_detects_wire_divergence_within_fanout_group():
    # two combos with identical fanout_batch but different raw frames
    combos = [
        {name: False for name in TOGGLES},
        {**{name: False for name in TOGGLES}, "stride_lpm": True},
    ]
    rigged = _Rigged([_result(), _result(wire=b"DIFF")])
    report = rigged.run(combinations=combos)
    assert not report.ok
    assert any("wire bytes" in m for m in report.mismatches)


def test_wire_not_compared_across_fanout_groups():
    # different fanout_batch values: raw bytes may differ, but the
    # decoded change stream and structure must not
    combos = [
        {name: False for name in TOGGLES},
        {**{name: False for name in TOGGLES}, "fanout_batch": True},
    ]
    rigged = _Rigged([_result(wire=b"one"), _result(wire=b"two")])
    report = rigged.run(combinations=combos)
    assert report.ok, report.format()
