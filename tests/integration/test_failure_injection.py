"""Integration: failure injection across the platform.

Covers: enforcement-engine overload (fail closed, platform-outage-over-
Internet-harm semantics of §4.7), session resets with route cleanup,
tunnel loss, and isolation between parallel experiments.
"""

import pytest

from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.netsim.addr import IPv4Prefix
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.toolkit import ExperimentClient

DEST = IPv4Prefix.parse("192.168.0.0/24")


@pytest.fixture
def world(scheduler):
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[PopConfig(name="p0", pop_id=0, kind="ixp")],
    )
    pop = platform.pops["p0"]
    port = pop.provision_neighbor("n1", 65010, kind="peer")
    neighbor = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65010, router_id=port.address)
    )
    neighbor.attach_neighbor(
        NeighborConfig(name="to-pop", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    neighbor.originate(local_route(DEST, next_hop=port.address))
    return scheduler, platform, pop, neighbor


def connect(scheduler, platform, name="x1"):
    platform.submit_proposal(ExperimentProposal(
        name=name, contact="t", goals="g", execution_plan="p",
    ))
    client = ExperimentClient(scheduler, name, platform)
    client.openvpn_up("p0")
    client.bird_start("p0")
    scheduler.run_for(10)
    return client


def test_enforcer_overload_blocks_all_but_recovers(world):
    scheduler, platform, pop, neighbor = world
    client = connect(scheduler, platform)
    prefix = client.profile.prefixes[0]
    pop.control_enforcer.overloaded = True
    client.announce(prefix)
    scheduler.run_for(5)
    assert neighbor.best_route(prefix) is None  # failed closed
    pop.control_enforcer.overloaded = False
    client.announce(prefix)
    scheduler.run_for(5)
    assert neighbor.best_route(prefix) is not None


def test_upstream_session_loss_withdraws_from_experiments(world):
    scheduler, platform, pop, neighbor = world
    client = connect(scheduler, platform)
    assert client.routes(DEST, "p0")
    pop.node.upstreams["n1"].session.shutdown()
    scheduler.run_for(5)
    assert client.routes(DEST, "p0") == []
    # Per-neighbor kernel table was emptied too.
    table = pop.stack.tables[pop.node.upstreams["n1"].virtual.table_id]
    assert len(table) == 0


def test_experiment_crash_cleans_internet_state(world):
    scheduler, platform, pop, neighbor = world
    client = connect(scheduler, platform)
    prefix = client.profile.prefixes[0]
    client.announce(prefix)
    scheduler.run_for(5)
    assert neighbor.best_route(prefix) is not None
    # Simulate a crash: the BGP session dies without a clean withdraw.
    client.pops["p0"].session.channel.close()
    scheduler.run_for(5)
    assert neighbor.best_route(prefix) is None


def test_parallel_experiments_isolated(world):
    """One experiment's announcements and limits never affect another."""
    scheduler, platform, pop, neighbor = world
    a = connect(scheduler, platform, "a")
    b = connect(scheduler, platform, "b")
    prefix_a = a.profile.prefixes[0]
    prefix_b = b.profile.prefixes[0]
    assert prefix_a != prefix_b
    # Exhaust a's update budget.
    for _ in range(200):
        a.announce(prefix_a)
    scheduler.run_for(5)
    # b is unaffected.
    b.announce(prefix_b)
    scheduler.run_for(5)
    assert neighbor.best_route(prefix_b) is not None
    # a cannot announce b's prefix (hijack across experiments).
    a.announce(prefix_b)
    scheduler.run_for(5)
    exported = neighbor.best_route(prefix_b)
    assert exported is not None
    # The route for b's prefix is b's announcement (origin path via b),
    # and a's hijack was logged as a violation.
    assert any(
        "not allocated" in violation.reason and violation.experiment == "a"
        for violation in pop.control_enforcer.violations
    )


def test_tunnel_down_stops_data_plane(world):
    scheduler, platform, pop, neighbor = world
    client = connect(scheduler, platform)
    routes = client.routes(DEST, "p0")
    view = client.pops["p0"]
    view.connection.tunnel.set_up(False)
    from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram

    before = pop.stack.counters["forwarded"]
    packet = IPv4Packet(
        src=client.profile.prefixes[0].address_at(1),
        dst=DEST.address_at(1),
        proto=IpProto.UDP, payload=UdpDatagram(1, 9),
    )
    client.send_via("p0", routes[0], packet)
    scheduler.run_for(5)
    assert pop.stack.counters["forwarded"] == before


def test_malformed_wire_input_resets_only_that_session(world):
    scheduler, platform, pop, neighbor = world
    client = connect(scheduler, platform)
    # Corrupt bytes on the experiment session.
    client.pops["p0"].session.channel.send(b"\xff" * 16 + b"\x00\x05\x09")
    scheduler.run_for(5)
    attachment = pop.node.experiments.get("x1")
    assert attachment is None  # experiment session torn down and cleaned
    # The upstream neighbor session is unaffected.
    assert pop.node.upstreams["n1"].session.established
