"""Integration: the §7.3 incident, re-enacted.

"One recent experiment ... proceeded to make (standards-compliant)
announcements on a fixed schedule. The announcements identified a
vulnerability in an open-source routing daemon which caused BGP sessions
to reset [CVE-2019-5892] ... the experiment was halted until affected
systems could be patched."

We model a *buggy* neighbor daemon that crashes its session on a
perfectly valid unknown transitive attribute, show the blast radius is
limited to that neighbor, and show the operator response: revoking the
experiment's transitive-attribute capability halts the harmful
announcements platform-wide without touching anything else.
"""

import pytest

from repro.bgp.attributes import UnknownAttribute, local_route
from repro.bgp.errors import ErrorCode, NotificationError, UpdateSubcode
from repro.bgp.messages import UpdateMessage
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import (
    CapabilityRequest,
    ExperimentProposal,
)
from repro.security.capabilities import Capability
from repro.toolkit import ExperimentClient

ATTRIBUTE = UnknownAttribute(
    type_code=99,
    flags=UnknownAttribute.FLAG_OPTIONAL | UnknownAttribute.FLAG_TRANSITIVE,
    value=b"\x20\x19",
)


class BuggyDaemon(BgpSpeaker):
    """An open-source routing daemon with a CVE-2019-5892-style bug:
    any unknown transitive attribute crashes the session."""

    def _update_received(self, neighbor_name, update):
        if update.attributes is not None and update.attributes.unknown:
            neighbor = self.neighbors.get(neighbor_name)
            if neighbor is not None and neighbor.session is not None:
                neighbor.session.notify_and_close(NotificationError(
                    ErrorCode.UPDATE_MESSAGE,
                    UpdateSubcode.OPTIONAL_ATTRIBUTE_ERROR,
                    message="daemon bug: cannot handle attribute 99",
                ))
            return
        super()._update_received(neighbor_name, update)


@pytest.fixture
def incident_world(scheduler):
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="p0", pop_id=0, kind="ixp"),
    ])
    pop = platform.pops["p0"]
    neighbors = {}
    for name, asn, daemon in (
        ("healthy", 65010, BgpSpeaker),
        ("buggy", 65020, BuggyDaemon),
    ):
        port = pop.provision_neighbor(name, asn, kind="peer")
        speaker = daemon(
            scheduler, SpeakerConfig(asn=asn, router_id=port.address)
        )
        speaker.attach_neighbor(
            NeighborConfig(name="to-pop", peer_asn=None,
                           local_address=port.address),
            port.channel,
        )
        neighbors[name] = speaker
    platform.submit_proposal(ExperimentProposal(
        name="probe", contact="r@example.edu",
        goals="measure transitive attribute propagation",
        execution_plan="announce with attribute 99 on a fixed schedule",
        capability_requests=[
            CapabilityRequest(Capability.TRANSITIVE_ATTRIBUTES),
        ],
    ))
    client = ExperimentClient(scheduler, "probe", platform)
    client.openvpn_up("p0")
    client.bird_start("p0")
    scheduler.run_for(10)
    return scheduler, platform, pop, neighbors, client


def announce_with_attribute(client, scheduler):
    view = client.pops["p0"]
    route = local_route(
        client.profile.prefixes[0],
        next_hop=view.connection.tunnel.client_ip,
    ).with_attributes(unknown=(ATTRIBUTE,))
    view.session.send_update(UpdateMessage.announce([route]))
    scheduler.run_for(10)


def test_compliant_announcement_resets_buggy_daemon(incident_world):
    scheduler, platform, pop, neighbors, client = incident_world
    announce_with_attribute(client, scheduler)
    # The buggy daemon reset its session (the incident) ...
    assert not pop.node.upstreams["buggy"].session.established
    # ... while compliant implementations carried the route fine.
    healthy = neighbors["healthy"]
    best = healthy.best_route(client.profile.prefixes[0])
    assert best is not None
    carried = best.attributes.unknown[0]
    assert carried.type_code == ATTRIBUTE.type_code
    assert carried.value == ATTRIBUTE.value
    # RFC 4271 §5: the PARTIAL bit is set on propagated unknown
    # transitive attributes.
    assert carried.flags & UnknownAttribute.FLAG_PARTIAL
    assert healthy.neighbors["to-pop"].established


def test_halting_the_experiment(incident_world):
    """The operator response: revoke the capability; further
    announcements are sanitized platform-wide, sessions stay up."""
    scheduler, platform, pop, neighbors, client = incident_world
    pop.control_enforcer.profiles["probe"].revoke(
        Capability.TRANSITIVE_ATTRIBUTES
    )
    announce_with_attribute(client, scheduler)
    healthy = neighbors["healthy"]
    best = healthy.best_route(client.profile.prefixes[0])
    assert best is not None
    assert best.attributes.unknown == ()  # attribute stripped
    # Nothing harmful reached the buggy daemon; both sessions intact.
    assert pop.node.upstreams["buggy"].session.established
    assert pop.node.upstreams["healthy"].session.established
    assert any(
        "transitive attributes stripped" in violation.reason
        for violation in pop.control_enforcer.violations
    )
