"""Determinism: identical builds produce identical worlds.

The whole reproduction runs on one virtual clock with seeded randomness,
so two builds of the same configuration must converge to exactly the
same state — the property that makes results (and regressions)
reproducible.
"""

from repro.internet import InternetConfig, build_internet
from repro.platform import PeeringPlatform
from repro.sim import Scheduler


def build_world():
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler)
    internet = build_internet(
        scheduler, platform,
        InternetConfig(n_tier1=2, n_transit=4, n_stub=8,
                       with_looking_glass=False),
    )
    scheduler.run_for(40)
    return scheduler, platform, internet


def snapshot(platform):
    state = {}
    for name, pop in platform.pops.items():
        state[name] = {
            "neighbors": sorted(pop.node.upstreams),
            "routes": sorted(
                (str(route.prefix), str(route.next_hop),
                 route.as_path.asns)
                for route in pop.node.known_routes()
            ),
            "fib": pop.node.fib_entry_count(),
            "remote": sorted(pop.node.remote_neighbors),
        }
    return state


def test_identical_builds_converge_identically():
    _s1, platform_a, _i1 = build_world()
    _s2, platform_b, _i2 = build_world()
    assert snapshot(platform_a) == snapshot(platform_b)


def test_event_counts_are_reproducible():
    scheduler_a, platform_a, _ = build_world()
    scheduler_b, platform_b, _ = build_world()
    counters_a = {n: dict(p.node.counters)
                  for n, p in platform_a.pops.items()}
    counters_b = {n: dict(p.node.counters)
                  for n, p in platform_b.pops.items()}
    assert counters_a == counters_b
    assert scheduler_a.now == scheduler_b.now
