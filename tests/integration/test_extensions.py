"""Tests for the paper's extension / future-work features:

* ROUTE-REFRESH soft resets (toolkit "bird refresh"),
* the 6to4 IPv6 capability (§4.7),
* automated filter troubleshooting (Appendix A's future work),
* container-hosted experiments (§7.4's preliminary extension).
"""

import pytest

from repro.bgp.messages import RouteRefreshMessage, MessageDecoder
from repro.internet.asnode import InternetAS, Relationship
from repro.internet.overlay import AsOverlay
from repro.internet.troubleshoot import Verdict, diagnose
from repro.bgp.policy import Match, PolicyResult, PolicyRule, PrefixMatch, RouteMap
from repro.netsim.addr import IPv4Prefix, IPv6Prefix
from repro.security.capabilities import Capability
from repro.toolkit import ExperimentClient
from tests.conftest import approve_experiment


# ---------------------------------------------------------------------------
# ROUTE-REFRESH
# ---------------------------------------------------------------------------


def test_route_refresh_wire_roundtrip():
    decoder = MessageDecoder()
    decoder.feed(RouteRefreshMessage().encode())
    message = decoder.next_message()
    assert isinstance(message, RouteRefreshMessage)
    assert message.afi == 1 and message.safi == 1


def test_bird_refresh_resends_full_table(connected_client):
    scheduler, platform, internet, client = connected_client
    view = client.pops["uni-a"]
    before = dict(view.routes)
    assert before
    view.routes.clear()  # simulate a local soft-reset losing the RIB
    client.bird_refresh("uni-a")
    scheduler.run_for(5)
    assert view.routes  # the table came back
    # The same stable path ids were reused.
    assert set(view.routes) == set(before)
    assert view.routes == before


def test_bird_refresh_requires_session(connected_client):
    scheduler, platform, internet, client = connected_client
    client.bird_stop("uni-a")
    scheduler.run_for(2)
    with pytest.raises(RuntimeError):
        client.bird_refresh("uni-a")


# ---------------------------------------------------------------------------
# 6to4 capability
# ---------------------------------------------------------------------------


def six_to_four_prefix(v4: IPv4Prefix) -> IPv6Prefix:
    """RFC 3056: 2002:<v4 bits>::/(16 + v4 length)."""
    value = (0x2002 << 112) | (v4.network.value << (128 - 48))
    from repro.netsim.addr import IPv6Address

    return IPv6Prefix(IPv6Address(value), 16 + v4.length)


def test_6to4_gated_by_capability(small_world):
    scheduler, platform, internet = small_world
    approve_experiment(platform, "v6exp")
    pop = platform.pops["uni-a"]
    enforcer = pop.control_enforcer
    profile = enforcer.profiles["v6exp"]
    v4 = profile.prefixes[0]
    mapped = six_to_four_prefix(v4)
    from repro.bgp.attributes import local_route
    from repro.netsim.addr import IPv4Address

    route = local_route(mapped, next_hop=IPv4Address.parse("100.125.0.2"))
    assert enforcer.filter_routes("v6exp", [route], "uni-a") == []
    assert "6to4" in enforcer.violations[-1].reason
    profile.grant(Capability.IPV6_6TO4)
    assert enforcer.filter_routes("v6exp", [route], "uni-a")


def test_6to4_must_embed_owned_v4(small_world):
    scheduler, platform, internet = small_world
    approve_experiment(platform, "v6exp")
    enforcer = platform.pops["uni-a"].control_enforcer
    enforcer.profiles["v6exp"].grant(Capability.IPV6_6TO4)
    foreign = six_to_four_prefix(IPv4Prefix.parse("8.8.8.0/24"))
    from repro.bgp.attributes import local_route
    from repro.netsim.addr import IPv4Address

    route = local_route(foreign, next_hop=IPv4Address.parse("100.125.0.2"))
    assert enforcer.filter_routes("v6exp", [route], "uni-a") == []
    assert "unallocated" in enforcer.violations[-1].reason


def test_non_6to4_ipv6_rejected(small_world):
    scheduler, platform, internet = small_world
    approve_experiment(platform, "v6exp")
    enforcer = platform.pops["uni-a"].control_enforcer
    enforcer.profiles["v6exp"].grant(Capability.IPV6_6TO4)
    from repro.bgp.attributes import local_route
    from repro.netsim.addr import IPv4Address

    route = local_route(IPv6Prefix.parse("2001:db8::/32"),
                        next_hop=IPv4Address.parse("100.125.0.2"))
    assert enforcer.filter_routes("v6exp", [route], "uni-a") == []


# ---------------------------------------------------------------------------
# Automated filter troubleshooting (Appendix A)
# ---------------------------------------------------------------------------


@pytest.fixture
def filtered_chain(scheduler):
    """origin -> middle -> edge, where `edge` misfilters the prefix on
    import (an "improperly configured or out-of-date filter")."""
    overlay = AsOverlay(scheduler)
    prefix = IPv4Prefix.parse("32.0.0.0/16")

    def make(asn, net):
        node = InternetAS(scheduler, overlay, asn=asn, name=f"as{asn}",
                          prefixes=(IPv4Prefix.parse(net),))
        node.originate_all()
        return node

    origin = make(100, "32.0.0.0/16")
    middle = make(200, "32.1.0.0/16")
    edge = make(300, "32.2.0.0/16")
    middle.peer_with(origin, Relationship.CUSTOMER)
    middle.peer_with(edge, Relationship.CUSTOMER)
    # Break edge's import from middle for the origin's prefix only.
    broken = RouteMap(rules=[
        PolicyRule(
            match=Match(prefixes=(PrefixMatch(prefix, ge=16, le=32),)),
            result=PolicyResult.REJECT,
            name="stale-filter",
        ),
    ])
    scheduler.run_for(2)
    edge.speaker.neighbors["as200"].config.import_policy = broken
    # Re-announce so the (now broken) filter applies.
    origin.speaker.withdraw(prefix)
    scheduler.run_for(2)
    origin.speaker.originate(
        __import__("repro.bgp.attributes", fromlist=["local_route"])
        .local_route(prefix, next_hop=origin.speaker.config.router_id)
    )
    scheduler.run_for(5)
    return scheduler, prefix, origin, middle, edge


def test_snapshot_partitions_carriers(filtered_chain):
    scheduler, prefix, origin, middle, edge = filtered_chain
    report = diagnose([origin, middle, edge], prefix)
    assert origin.asn in report.carrying
    assert middle.asn in report.carrying
    assert edge.asn in report.missing


def test_looking_glass_level_is_ambiguous(filtered_chain):
    """Reproduces the paper's complaint: glasses cannot disambiguate."""
    scheduler, prefix, origin, middle, edge = filtered_chain
    report = diagnose([origin, middle, edge], prefix, router_access=False)
    assert len(report.suspects) == 1
    suspect = report.suspects[0]
    assert (suspect.from_asn, suspect.to_asn) == (200, 300)
    assert suspect.verdict == Verdict.AMBIGUOUS


def test_router_access_pinpoints_import_filter(filtered_chain):
    scheduler, prefix, origin, middle, edge = filtered_chain
    report = diagnose([origin, middle, edge], prefix, router_access=True)
    assert report.suspects[0].verdict == Verdict.IMPORT_SIDE
    assert "AS200 -> AS300" in report.summary()


def test_router_access_pinpoints_export_filter(scheduler):
    """The symmetric fault: the carrier's *export* filter is broken."""
    overlay = AsOverlay(scheduler)
    prefix = IPv4Prefix.parse("32.0.0.0/16")
    from repro.bgp.attributes import local_route

    origin = InternetAS(scheduler, overlay, asn=100, name="as100",
                        prefixes=(prefix,))
    edge = InternetAS(scheduler, overlay, asn=300, name="as300",
                      prefixes=(IPv4Prefix.parse("32.2.0.0/16"),))
    origin.peer_with(edge, Relationship.CUSTOMER)
    scheduler.run_for(2)
    broken = RouteMap(rules=[
        PolicyRule(
            match=Match(prefixes=(PrefixMatch(prefix, ge=16, le=32),)),
            result=PolicyResult.REJECT,
        ),
    ])
    origin.speaker.neighbors["as300"].config.export_policy = broken
    origin.originate_all()
    scheduler.run_for(5)
    report = diagnose([origin, edge], prefix, router_access=True)
    assert report.suspects
    assert report.suspects[0].verdict == Verdict.EXPORT_SIDE


def test_valley_free_gaps_are_not_faults(scheduler):
    """Propagation absence predicted by policy is not flagged."""
    overlay = AsOverlay(scheduler)
    from repro.bgp.attributes import local_route

    a = InternetAS(scheduler, overlay, asn=100, name="a",
                   prefixes=(IPv4Prefix.parse("32.0.0.0/16"),))
    b = InternetAS(scheduler, overlay, asn=200, name="b",
                   prefixes=(IPv4Prefix.parse("32.1.0.0/16"),))
    c = InternetAS(scheduler, overlay, asn=300, name="c",
                   prefixes=(IPv4Prefix.parse("32.2.0.0/16"),))
    a.originate_all(); b.originate_all(); c.originate_all()
    # a–b peer, b–c peer: c must not get a's prefix, and that's fine.
    a.peer_with(b, Relationship.PEER)
    b.peer_with(c, Relationship.PEER)
    scheduler.run_for(5)
    report = diagnose([a, b, c], a.prefixes[0], router_access=True)
    assert c.asn in report.missing
    assert report.suspects == []


# ---------------------------------------------------------------------------
# Container-hosted experiments (§7.4)
# ---------------------------------------------------------------------------


def test_container_attachment_has_lower_latency(small_world):
    scheduler, platform, internet = small_world
    approve_experiment(platform, "tunneled")
    approve_experiment(platform, "contained")
    tunneled = ExperimentClient(scheduler, "tunneled", platform)
    contained = ExperimentClient(scheduler, "contained", platform)
    view_t = tunneled.openvpn_up("uni-a")
    view_c = contained.openvpn_up("uni-a", container=True)
    assert view_c.connection.tunnel.link.latency < (
        view_t.connection.tunnel.link.latency / 10
    )
    # Both still pass through the same enforcement engines.
    tunneled.bird_start("uni-a")
    contained.bird_start("uni-a")
    scheduler.run_for(5)
    assert tunneled.bird_status()["uni-a"] == "established"
    assert contained.bird_status()["uni-a"] == "established"
