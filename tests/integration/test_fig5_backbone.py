"""Integration: Figure 5 — vBGP across the backbone (§4.4).

Two vBGP routers (E1, E2) on the backbone; E2 has neighbor N2. An
experiment attached at E1 must (a) see N2's routes with an E1-local
virtual next hop, and (b) be able to send traffic through E1 → backbone →
E2 → N2 by addressing N2's virtual MAC — the hop-by-hop next-hop rewrite.
"""

import pytest

from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.netsim.addr import IPv4Prefix
from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.toolkit import ExperimentClient
from repro.vbgp.allocator import GLOBAL_POOL

DEST = IPv4Prefix.parse("192.168.0.0/24")


@pytest.fixture
def figure5(scheduler):
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[
            PopConfig(name="e1", pop_id=0, kind="university", backbone=True),
            PopConfig(name="e2", pop_id=1, kind="university", backbone=True),
        ],
    )
    e2 = platform.pops["e2"]
    port = e2.provision_neighbor("n2", 65020, kind="transit")
    n2 = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65020, router_id=port.address)
    )
    n2.attach_neighbor(
        NeighborConfig(name="to-e2", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    n2.originate(local_route(DEST, next_hop=port.address))
    platform.submit_proposal(ExperimentProposal(
        name="x1", contact="t", goals="fig5", execution_plan="backbone",
    ))
    client = ExperimentClient(scheduler, "x1", platform)
    client.openvpn_up("e1")
    client.bird_start("e1")
    scheduler.run_for(10)
    return scheduler, platform, n2, port, client


def test_remote_route_visible_with_local_vip(figure5):
    scheduler, platform, n2, port, client = figure5
    routes = client.routes(DEST, "e1")
    assert len(routes) == 1
    assert str(routes[0].next_hop).startswith("127.65.")
    assert routes[0].as_path.origin_as == 65020


def test_backbone_carries_global_next_hops(figure5):
    scheduler, platform, n2, port, client = figure5
    e1 = platform.pops["e1"]
    gid = port.global_id
    remote = e1.node.remote_neighbors[gid]
    # E1's table for the remote neighbor points at the 127.127/16 global IP
    # over the backbone interface (the Figure 5 rewrite).
    entry = e1.stack.tables[remote.virtual.table_id].lookup(
        DEST.address_at(1)
    )
    assert entry is not None
    assert GLOBAL_POOL.contains_address(entry.value.next_hop)
    assert entry.value.out_iface == "bb0"


def test_data_plane_through_backbone(figure5):
    scheduler, platform, n2, port, client = figure5
    e1, e2 = platform.pops["e1"], platform.pops["e2"]
    route = client.routes(DEST, "e1")[0]
    packet = IPv4Packet(
        src=client.profile.prefixes[0].address_at(1),
        dst=DEST.address_at(1),
        proto=IpProto.UDP, payload=UdpDatagram(1, 9),
    )
    before = e2.stack.counters["forwarded"]
    client.send_via("e1", route, packet)
    scheduler.run_for(5)
    # The frame crossed E1 (rule → table → ARP for the global IP, answered
    # by E2's proxy-ARP with the neighbor's virtual MAC) and then E2
    # demuxed it into N2's table and forwarded to N2.
    assert e1.stack.counters["forwarded"] >= 1
    assert e2.stack.counters["forwarded"] == before + 1
    # E1 resolved the global IP to the deterministic virtual MAC.
    gid = port.global_id
    from repro.vbgp.allocator import global_neighbor_ip, global_neighbor_mac

    cached = e1.stack.arp_table.get(global_neighbor_ip(gid))
    assert cached is not None and cached[0] == global_neighbor_mac(gid)


def test_withdraw_propagates_over_backbone(figure5):
    scheduler, platform, n2, port, client = figure5
    assert client.routes(DEST, "e1")
    n2.withdraw(DEST)
    scheduler.run_for(5)
    assert client.routes(DEST, "e1") == []


def test_experiment_announcement_crosses_backbone(figure5):
    """Announcements can *target* neighbors at remote PoPs (§4.4) when a
    whitelist community directs them there; a plain announcement stays at
    the PoP where it was made."""
    from repro.vbgp.communities import announce_to_neighbor

    scheduler, platform, n2, port, client = figure5
    prefix = client.profile.prefixes[0]
    client.announce(prefix)  # plain: exits only at e1 (no neighbors there)
    scheduler.run_for(10)
    assert n2.best_route(prefix) is None
    client.withdraw(prefix)
    scheduler.run_for(5)
    client.announce(
        prefix, communities=(announce_to_neighbor(port.global_id),)
    )
    scheduler.run_for(10)
    best = n2.best_route(prefix)
    assert best is not None
    assert 47065 in best.as_path.asns
    # Control communities stripped before reaching the neighbor.
    assert announce_to_neighbor(port.global_id) not in best.communities
