"""Integration: the complete Figure 2 walkthrough, step by step.

Two neighbors (N1, N2) announce the same destination prefix to a vBGP
router (E1); experiment X1 receives both routes with rewritten next hops
( 1○– 4○), resolves the virtual next hop via ARP ( 5○– 7○), and sends a
frame whose destination MAC selects the neighbor's routing table
( 8○– 11○). We assert on every observable artifact of the figure.
"""

import pytest

from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.attributes import local_route
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.toolkit import ExperimentClient

DEST = IPv4Prefix.parse("192.168.0.0/24")


@pytest.fixture
def figure2(scheduler):
    """One PoP (E1), two neighbor speakers (N1, N2), one experiment."""
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[PopConfig(name="e1", pop_id=0, kind="ixp")],
    )
    pop = platform.pops["e1"]
    neighbors = {}
    for name, asn in (("n1", 65010), ("n2", 65020)):
        port = pop.provision_neighbor(name, asn, kind="peer")
        speaker = BgpSpeaker(
            scheduler, SpeakerConfig(asn=asn, router_id=port.address)
        )
        speaker.attach_neighbor(
            NeighborConfig(name="to-e1", peer_asn=None,
                           local_address=port.address),
            port.channel,
        )
        speaker.originate(local_route(DEST, next_hop=port.address))
        neighbors[name] = (speaker, port)
    platform.submit_proposal(ExperimentProposal(
        name="x1", contact="t", goals="fig2", execution_plan="walkthrough",
    ))
    client = ExperimentClient(scheduler, "x1", platform)
    client.openvpn_up("e1")
    client.bird_start("e1")
    scheduler.run_for(10)
    return scheduler, platform, pop, neighbors, client


def test_steps_1_to_4_next_hop_rewriting(figure2):
    scheduler, platform, pop, neighbors, client = figure2
    routes = client.routes(DEST, "e1")
    assert len(routes) == 2
    # Next hops are E1-local virtual addresses, not the neighbors' real IPs.
    real = {str(neighbors["n1"][1].address), str(neighbors["n2"][1].address)}
    for route in routes:
        assert str(route.next_hop).startswith("127.65.")
        assert str(route.next_hop) not in real
    # The AS paths still identify the neighbors.
    assert {r.as_path.origin_as for r in routes} == {65010, 65020}


def test_steps_5_to_7_arp_for_virtual_next_hop(figure2):
    scheduler, platform, pop, neighbors, client = figure2
    n2_routes = [r for r in client.routes(DEST, "e1")
                 if r.as_path.origin_as == 65020]
    route = n2_routes[0]
    packet = IPv4Packet(
        src=client.profile.prefixes[0].address_at(1),
        dst=DEST.address_at(1),
        proto=IpProto.UDP, payload=UdpDatagram(1, 9),
    )
    client.send_via("e1", route, packet)
    scheduler.run_for(3)
    # The client's ARP cache now maps the virtual IP to the virtual MAC
    # E1 assigned to N2.
    expected = pop.node.upstreams["n2"].virtual
    cached = client.stack.arp_table.get(expected.local_ip)
    assert cached is not None
    assert cached[0] == expected.mac


def test_steps_8_to_11_mac_demux_to_neighbor_table(figure2):
    scheduler, platform, pop, neighbors, client = figure2
    for name, asn in (("n1", 65010), ("n2", 65020)):
        speaker, port = neighbors[name]
        chosen = [r for r in client.routes(DEST, "e1")
                  if r.as_path.origin_as == asn][0]
        # The neighbor's speaker has no attached stack, so assert on
        # delivery into the neighbor's LAN stack instead:
        before = pop.stack.counters["forwarded"]
        packet = IPv4Packet(
            src=client.profile.prefixes[0].address_at(1),
            dst=DEST.address_at(1),
            proto=IpProto.UDP, payload=UdpDatagram(1, 9),
        )
        client.send_via("e1", chosen, packet)
        scheduler.run_for(3)
        assert pop.stack.counters["forwarded"] == before + 1


def test_packet_exits_via_selected_neighbor(figure2):
    """The experiment's per-packet choice controls the egress neighbor,
    even though E1's own best-path would always pick one of them."""
    scheduler, platform, pop, neighbors, client = figure2
    table_n1 = pop.node.upstreams["n1"].virtual.table_id
    table_n2 = pop.node.upstreams["n2"].virtual.table_id
    # Verify per-neighbor tables carry distinct next hops.
    entry1 = pop.stack.tables[table_n1].lookup(DEST.address_at(1))
    entry2 = pop.stack.tables[table_n2].lookup(DEST.address_at(1))
    assert entry1.value.next_hop == neighbors["n1"][1].address
    assert entry2.value.next_hop == neighbors["n2"][1].address


def test_return_traffic_attributed_by_source_mac(figure2):
    scheduler, platform, pop, neighbors, client = figure2
    prefix = client.profile.prefixes[0]
    client.announce(prefix)
    scheduler.run_for(5)
    # N1's speaker now knows the experiment prefix; N1 has no overlay
    # stack here, so emulate delivery: inject a packet into the PoP from
    # N1's LAN port by sending from its address via vBGP's intercept.
    from repro.netsim.frames import EthernetFrame, EtherType
    from repro.netsim.link import Link, Port

    n1_port = neighbors["n1"][1]
    # Plug a device port into N1's switch port (the speaker fixture has no
    # stack of its own) and emit the frame as N1's router would.
    device = Port("n1-wire")
    Link(scheduler, device, n1_port.lan_port)
    probe = IPv4Packet(
        src=IPv4Address.parse("192.168.0.1"),
        dst=prefix.address_at(1),
        proto=IpProto.UDP, payload=UdpDatagram(7, 33434),
    )
    frame = EthernetFrame(
        src=n1_port.mac, dst=pop.server_lan_mac,
        ethertype=EtherType.IPV4, payload=probe,
    )
    device.transmit(frame)
    scheduler.run_for(3)
    assert client.delivered
    _packet, smac, _iface = client.delivered[-1]
    assert smac == pop.node.upstreams["n1"].virtual.mac
