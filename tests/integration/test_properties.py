"""Cross-cutting property-based tests on system invariants.

These go beyond per-module round trips: they state safety properties of
the platform (the enforcer never leaks unowned prefixes; the codec is
chunking-invariant; token buckets bound long-run rate; the vBGP kernel
state always mirrors the per-neighbor RIBs under arbitrary churn).
"""

import random

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import (
    AsPath,
    Community,
    Origin,
    PathAttributes,
    Route,
)
from repro.bgp.messages import MessageDecoder, UpdateMessage
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.frames import EtherType, EthernetFrame
from repro.security import ControlPlaneEnforcer, ExperimentProfile
from repro.security.data import BpfContext, BpfVerdict, TokenBucketProgram
from repro.sim import Scheduler

ALLOCATION = IPv4Prefix.parse("184.164.224.0/23")


# ---------------------------------------------------------------------------
# Enforcer safety: no unowned prefix ever escapes
# ---------------------------------------------------------------------------

prefixes = st.builds(
    lambda value, length: IPv4Prefix.from_address(IPv4Address(value), length),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=8, max_value=32),
)
paths = st.lists(
    st.integers(min_value=1, max_value=70000), max_size=6
).map(lambda asns: AsPath.from_asns(*asns))


@st.composite
def candidate_routes(draw):
    return Route(
        prefix=draw(prefixes),
        attributes=PathAttributes(
            origin=Origin.IGP,
            as_path=draw(paths),
            next_hop=IPv4Address(draw(st.integers(0, (1 << 32) - 1))),
            communities=frozenset(draw(st.lists(
                st.builds(Community, st.integers(0, 65535),
                          st.integers(0, 65535)),
                max_size=4,
            ))),
        ),
    )


@settings(max_examples=80, deadline=None)
@given(st.lists(candidate_routes(), max_size=10))
def test_enforcer_never_leaks_unowned_prefixes(routes):
    """For ANY input, every accepted route's prefix is inside the
    experiment's allocation — the §4.7 hijack guarantee as a property."""
    scheduler = Scheduler()
    enforcer = ControlPlaneEnforcer(
        scheduler, platform_asns=frozenset({47065})
    )
    enforcer.register_experiment(ExperimentProfile(
        name="x", asns=frozenset({47065}), prefixes=(ALLOCATION,)
    ))
    accepted = enforcer.filter_routes("x", routes, "pop")
    for route in accepted:
        assert ALLOCATION.contains_prefix(route.prefix)
        assert route.prefix.length <= 24
        # Origins are platform/experiment ASNs only.
        origin = route.as_path.origin_as
        assert origin is None or origin == 47065


@settings(max_examples=80, deadline=None)
@given(st.lists(candidate_routes(), max_size=10))
def test_enforcer_output_is_subset_by_prefix(routes):
    """The enforcer only filters/transforms; it never invents routes."""
    scheduler = Scheduler()
    enforcer = ControlPlaneEnforcer(
        scheduler, platform_asns=frozenset({47065})
    )
    enforcer.register_experiment(ExperimentProfile(
        name="x", asns=frozenset({47065}), prefixes=(ALLOCATION,)
    ))
    accepted = enforcer.filter_routes("x", routes, "pop")
    input_prefixes = {route.prefix for route in routes}
    assert all(route.prefix in input_prefixes for route in accepted)
    assert len(accepted) <= len(routes)


# ---------------------------------------------------------------------------
# Codec: chunking invariance
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    st.lists(candidate_routes(), min_size=1, max_size=5),
    st.lists(st.integers(min_value=1, max_value=64), max_size=30),
)
def test_decoder_is_chunking_invariant(routes, chunk_sizes):
    """Feeding a byte stream in arbitrary chunks yields the same
    messages as feeding it at once."""
    stream = b"".join(
        UpdateMessage.announce([route]).encode() for route in routes
    )
    whole = MessageDecoder()
    whole.feed(stream)
    expected = list(whole)

    chunked = MessageDecoder()
    received = []
    position = 0
    sizes = iter(chunk_sizes)
    while position < len(stream):
        size = next(sizes, 4096)
        chunked.feed(stream[position:position + size])
        received.extend(chunked)
        position += size
    assert received == expected


# ---------------------------------------------------------------------------
# Token bucket: long-run rate bound
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.001, max_value=0.5),  # inter-arrival
            st.integers(min_value=64, max_value=1500),  # frame size
        ),
        min_size=10, max_size=120,
    )
)
def test_token_bucket_bounds_longrun_rate(arrivals):
    """Accepted bytes never exceed burst + rate×elapsed for any arrival
    pattern."""
    rate_bps = 80_000.0  # 10 KB/s
    burst = 5_000
    program = TokenBucketProgram(rate_bps=rate_bps, burst_bytes=burst)
    now = 0.0
    accepted_bytes = 0
    src = MacAddress(0x02AA00000001)
    for gap, size in arrivals:
        now += gap
        frame = EthernetFrame(
            src=src, dst=MacAddress(0x02BB00000001),
            ethertype=EtherType.IPV4, payload=b"x" * size,
        )
        verdict, _ = program.run(
            frame, BpfContext(now=now, iface="exp0", pop="p")
        )
        if verdict == BpfVerdict.PASS:
            accepted_bytes += frame.size
        assert accepted_bytes <= burst + (rate_bps / 8) * now + 1


# ---------------------------------------------------------------------------
# vBGP: kernel tables mirror per-neighbor RIBs under churn
# ---------------------------------------------------------------------------


def test_vbgp_kernel_state_mirrors_rib_under_churn():
    """Seeded random announce/withdraw churn: after every step, the set
    of prefixes in each neighbor's kernel table equals the set in its
    RIB (no leaks, no stale FIB entries)."""
    from repro.platform.pop import PointOfPresence, PopConfig
    from repro.security.state import EnforcerState
    from repro.vbgp.allocator import GlobalNeighborRegistry
    from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
    from repro.bgp.attributes import local_route

    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler, PopConfig(name="p", pop_id=0),
        platform_asn=47065, platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    speakers = {}
    for name, asn in (("n1", 65010), ("n2", 65020)):
        port = pop.provision_neighbor(name, asn, kind="peer")
        speaker = BgpSpeaker(
            scheduler, SpeakerConfig(asn=asn, router_id=port.address)
        )
        speaker.attach_neighbor(
            NeighborConfig(name="up", peer_asn=None,
                           local_address=port.address),
            port.channel,
        )
        speakers[name] = speaker
    scheduler.run_for(2)

    rng = random.Random(99)
    pool = list(IPv4Prefix.parse("77.0.0.0/8").subnets(20))[:40]
    announced = {"n1": set(), "n2": set()}
    for _step in range(300):
        name = rng.choice(("n1", "n2"))
        prefix = rng.choice(pool)
        speaker = speakers[name]
        if prefix in announced[name] and rng.random() < 0.5:
            speaker.withdraw(prefix)
            announced[name].discard(prefix)
        else:
            speaker.originate(local_route(
                prefix, next_hop=speaker.config.router_id
            ))
            announced[name].add(prefix)
        scheduler.run_for(1)
        for check_name in ("n1", "n2"):
            neighbor = pop.node.upstreams[check_name]
            rib_prefixes = {key[0] for key in neighbor.rib}
            table = pop.stack.tables[neighbor.virtual.table_id]
            fib_prefixes = {entry.prefix for entry in table.entries()}
            assert rib_prefixes == fib_prefixes == announced[check_name]
