"""Integration: the §4.7 security-policy test methodology.

"For each capability, we deploy two (emulated) experiments in our
controlled environment: one that does not require the capability and one
that does. We execute both experiments twice, with and without the
capability. We check that the routes exported and traffic exchanged in
each execution match the configured policy."

This test builds that exact matrix against an emulated PoP with a real
neighbor speaker and asserts on what the neighbor actually receives.
"""


from repro.bgp.attributes import Community
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.netsim.addr import IPv4Address
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import (
    CapabilityRequest,
    ExperimentProposal,
)
from repro.security.capabilities import Capability
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient


def build_environment(scheduler, capability=None, limit=None):
    """One PoP + one observer neighbor + one experiment (optionally with
    the capability under test)."""
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[PopConfig(name="testpop", pop_id=0, kind="ixp")],
    )
    pop = platform.pops["testpop"]
    port = pop.provision_neighbor("observer", 65010, kind="peer")
    observer = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65010, router_id=port.address)
    )
    received = []
    observer.on_route_received.append(
        lambda peer, route: received.append(route)
    )
    observer.attach_neighbor(
        NeighborConfig(name="to-pop", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    requests = []
    if capability is not None:
        requests.append(CapabilityRequest(capability, limit=limit))
    platform.submit_proposal(ExperimentProposal(
        name="probe", contact="t", goals="matrix",
        execution_plan="capability test", capability_requests=requests,
    ))
    client = ExperimentClient(scheduler, "probe", platform)
    client.openvpn_up("testpop")
    client.bird_start("testpop")
    scheduler.run_for(10)
    return platform, pop, observer, received, client


def run_matrix(scheduler_factory, capability, limit, announce_kwargs):
    """Run with and without the capability; return received routes."""
    results = {}
    for granted in (False, True):
        scheduler = scheduler_factory()
        _platform, _pop, _observer, received, client = build_environment(
            scheduler,
            capability=capability if granted else None,
            limit=limit,
        )
        client.announce(client.profile.prefixes[0], **announce_kwargs)
        scheduler.run_for(10)
        results[granted] = list(received)
    return results


def test_communities_stripped_without_capability():
    """The paper's worked example: 'we deploy an experiment that makes
    announcement with BGP communities with and without the corresponding
    capability, and check that communities are stripped from exported
    announcements when the capability is missing.'"""
    marker = Community(3356, 70)
    results = run_matrix(
        Scheduler, Capability.BGP_COMMUNITIES, 4,
        {"communities": (marker,)},
    )
    without, with_grant = results[False], results[True]
    assert without and with_grant  # announcement exported in both runs
    assert all(marker not in route.communities for route in without)
    assert any(marker in route.communities for route in with_grant)


def test_poisoning_blocked_without_capability():
    results = run_matrix(
        Scheduler, Capability.AS_PATH_POISONING, 2,
        {"poison": (3356,)},
    )
    assert results[False] == []  # rejected outright
    assert results[True]
    assert any(3356 in route.as_path.asns for route in results[True])


def test_basic_announcement_unaffected_by_grants():
    """The experiment that does NOT use the capability behaves identically
    with and without it."""
    results = run_matrix(
        Scheduler, Capability.BGP_COMMUNITIES, 4, {},
    )
    assert len(results[False]) == len(results[True]) == 1
    assert results[False][0].prefix == results[True][0].prefix


def test_spoofed_traffic_dropped_but_valid_passes(scheduler):
    """Data-plane side of the matrix: anti-spoofing."""
    platform, pop, observer, _received, client = build_environment(scheduler)
    client.announce(client.profile.prefixes[0])
    scheduler.run_for(5)
    from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram

    _route = client.pops["testpop"].all_routes()
    # The observer announces nothing, so fabricate a destination route by
    # sending toward the observer's address space directly.
    dst = IPv4Address.parse("100.64.0.10")
    valid = IPv4Packet(src=client.profile.prefixes[0].address_at(1),
                       dst=dst, proto=IpProto.UDP,
                       payload=UdpDatagram(1, 9))
    spoofed = IPv4Packet(src=IPv4Address.parse("8.8.8.8"),
                         dst=dst, proto=IpProto.UDP,
                         payload=UdpDatagram(1, 9))
    view = client.pops["testpop"]
    client.stack.send_ip_via(valid, view.connection.tunnel.server_ip,
                             view.iface)
    client.stack.send_ip_via(spoofed, view.connection.tunnel.server_ip,
                             view.iface)
    scheduler.run_for(5)
    assert pop.data_enforcer.anti_spoof.drops == 1
    assert pop.data_enforcer.frames_dropped == 1


def test_update_rate_limit_enforced_end_to_end(scheduler):
    platform, pop, observer, received, client = build_environment(scheduler)
    prefix = client.profile.prefixes[0]
    for _ in range(200):
        client.announce(prefix)
    scheduler.run_for(20)
    accepted = pop.control_enforcer.state.count(
        "probe", prefix, "testpop", scheduler.now
    )
    assert accepted == 144
    assert any(
        "rate limit" in violation.reason
        for violation in pop.control_enforcer.violations
    )
