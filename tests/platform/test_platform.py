"""Platform integration tests: construction, workflow, attachment."""

import pytest

from repro.platform import PeeringPlatform
from repro.platform.experiment import (
    CapabilityRequest,
    ExperimentProposal,
    ReviewDecision,
)
from repro.security.capabilities import Capability
from repro.netsim.stack import NetworkStack
from tests.conftest import approve_experiment


def test_default_deployment_matches_paper(scheduler):
    platform = PeeringPlatform(scheduler)
    assert len(platform.pops) == 13
    kinds = [pop.config.kind for pop in platform.pops.values()]
    assert kinds.count("ixp") == 4
    assert kinds.count("university") == 9
    backbone_members = [
        pop for pop in platform.pops.values() if pop.config.backbone
    ]
    assert len(backbone_members) >= 8
    # Full mesh among backbone members.
    for pop in backbone_members:
        assert len(pop.node.backbone_peers) == len(backbone_members) - 1


def test_cloudlab_sites_colocated_at_us_universities(scheduler):
    platform = PeeringPlatform(scheduler)
    for name in platform.cloudlab_sites:
        pop = platform.pops[name]
        assert pop.config.kind == "university"
        assert pop.config.region == "us"


def test_proposal_approval_allocates_and_registers(small_platform):
    platform = small_platform
    approve_experiment(platform, "x1")
    experiment = platform.experiments["x1"]
    assert len(experiment.profile.prefixes) == 1
    for pop in platform.pops.values():
        assert "x1" in pop.control_enforcer.profiles


def test_risky_proposal_rejected_and_recorded(small_platform):
    platform = small_platform
    proposal = ExperimentProposal(
        name="risky", contact="x", goals="g", execution_plan="p",
        capability_requests=[
            CapabilityRequest(Capability.AS_PATH_POISONING, limit=1000)
        ],
    )
    decision, _ = platform.submit_proposal(proposal)
    assert decision == ReviewDecision.REJECT
    assert platform.rejected_proposals
    assert "risky" not in platform.experiments


def test_own_asn_allocation(small_platform):
    platform = small_platform
    proposal = ExperimentProposal(
        name="own-asn", contact="x", goals="g", execution_plan="p",
        needs_own_asn=True,
    )
    platform.submit_proposal(proposal)
    lease = platform.resources.lease_for("own-asn")
    assert lease.asn != platform.platform_asn


def test_connect_experiment_opens_tunnel_and_session(small_platform,
                                                     scheduler):
    platform = small_platform
    approve_experiment(platform, "x1")
    stack = NetworkStack(scheduler, "client")
    connection = platform.connect_experiment("x1", "uni-a", stack)
    assert connection.tunnel.up
    pop = platform.pops["uni-a"]
    assert "x1" in pop.node.experiments
    assert pop.tunnels.status()
    # The data-plane enforcer knows the tunnel MAC.
    assert connection.tunnel.client_mac in (
        pop.data_enforcer.anti_spoof._allowed
    )


def test_connect_unknown_experiment_rejected(small_platform, scheduler):
    with pytest.raises(KeyError):
        small_platform.connect_experiment(
            "ghost", "uni-a", NetworkStack(scheduler, "x")
        )


def test_disconnect_cleans_up(small_platform, scheduler):
    platform = small_platform
    approve_experiment(platform, "x1")
    stack = NetworkStack(scheduler, "client")
    platform.connect_experiment("x1", "uni-a", stack)
    scheduler.run_for(2)
    platform.disconnect_experiment("x1", "uni-a")
    scheduler.run_for(2)
    pop = platform.pops["uni-a"]
    assert "x1" not in pop.node.experiments
    assert "uni-a" not in platform.experiments["x1"].connected_pops


def test_finish_experiment_releases_resources(small_platform):
    platform = small_platform
    approve_experiment(platform, "x1")
    before = platform.resources.free_prefix_count
    platform.finish_experiment("x1")
    assert platform.resources.free_prefix_count == before + 1
    for pop in platform.pops.values():
        assert "x1" not in pop.control_enforcer.profiles


def test_multiple_parallel_experiments(small_platform, scheduler):
    """The paper hosts 3–6 concurrent experiments (§4.6)."""
    platform = small_platform
    for index in range(6):
        approve_experiment(platform, f"x{index}")
    assert platform.resources.active_leases == 6
    stacks = [
        NetworkStack(scheduler, f"client-{index}") for index in range(6)
    ]
    for index, stack in enumerate(stacks):
        platform.connect_experiment(f"x{index}", "uni-a", stack)
    pop = platform.pops["uni-a"]
    assert len(pop.node.experiments) == 6
    # Each experiment has a distinct tunnel address.
    addresses = {
        attachment.tunnel_ip.value
        for attachment in pop.node.experiments.values()
    }
    assert len(addresses) == 6
