"""Tests for tunnels, the backbone fabric, and CloudLab federation."""

import pytest

from repro.netsim.addr import MacAddress
from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram
from repro.netsim.link import Switch
from repro.netsim.stack import NetworkStack
from repro.platform.backbone import Backbone, BackboneLinkSpec
from repro.platform.federation import CloudLabSite
from repro.platform.tunnels import TunnelManager
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.vbgp.allocator import GlobalNeighborRegistry


@pytest.fixture
def manager(scheduler):
    switch = Switch(scheduler, name="exp")
    server_mac = MacAddress.parse("02:cc:00:00:00:01")
    return TunnelManager(
        scheduler, pop_name="testpop", pop_id=3,
        exp_switch=switch, server_mac=server_mac, latency=0.015,
    )


class TestTunnels:
    def test_per_pop_subnet(self, manager):
        assert str(manager.subnet) == "100.125.3.0/24"
        assert str(manager.server_ip) == "100.125.3.1"

    def test_open_assigns_sequential_clients(self, manager, scheduler):
        a = manager.open("x1", NetworkStack(scheduler, "a"))
        b = manager.open("x2", NetworkStack(scheduler, "b"))
        assert str(a.client_ip) == "100.125.3.2"
        assert str(b.client_ip) == "100.125.3.3"
        assert a.client_mac != b.client_mac

    def test_client_iface_configured(self, manager, scheduler):
        stack = NetworkStack(scheduler, "client")
        tunnel = manager.open("x1", stack)
        iface = stack.interfaces[tunnel.client_iface]
        assert iface.up
        assert iface.mac == tunnel.client_mac
        # Point-to-point static ARP to the server.
        assert stack.arp_table[manager.server_ip][0] == manager.server_mac

    def test_duplicate_open_rejected(self, manager, scheduler):
        stack = NetworkStack(scheduler, "client")
        manager.open("x1", stack)
        with pytest.raises(ValueError):
            manager.open("x1", stack)

    def test_close_marks_down(self, manager, scheduler):
        stack = NetworkStack(scheduler, "client")
        tunnel = manager.open("x1", stack)
        manager.close(tunnel.name)
        assert not tunnel.up
        assert not stack.interfaces[tunnel.client_iface].up
        assert manager.status() == []

    def test_status_reports_latency(self, manager, scheduler):
        manager.open("x1", NetworkStack(scheduler, "client"),
                     latency=0.042)
        status = manager.status()[0]
        assert status["latency"] == 0.042
        assert status["pop"] == "testpop"


class TestBackbone:
    def test_attach_assigns_addresses(self, scheduler):
        backbone = Backbone(scheduler)
        a = NetworkStack(scheduler, "a")
        b = NetworkStack(scheduler, "b")
        addr_a = backbone.attach("pop-a", a)
        addr_b = backbone.attach("pop-b", b)
        assert addr_a != addr_b
        assert backbone.address_of("pop-a") == addr_a
        assert "bb0" in a.interfaces

    def test_fabric_carries_traffic(self, scheduler):
        backbone = Backbone(scheduler)
        a = NetworkStack(scheduler, "a")
        b = NetworkStack(scheduler, "b")
        addr_a = backbone.attach("pop-a", a, BackboneLinkSpec(latency=0.01))
        addr_b = backbone.attach("pop-b", b, BackboneLinkSpec(latency=0.01))
        received = []
        b.bind_udp(7, lambda packet, dgram: received.append(packet))
        a.send_ip(IPv4Packet(src=addr_a, dst=addr_b, proto=IpProto.UDP,
                             payload=UdpDatagram(1, 7)))
        scheduler.run_for(1)
        assert received

    def test_latency_is_enforced(self, scheduler):
        backbone = Backbone(scheduler)
        a = NetworkStack(scheduler, "a")
        b = NetworkStack(scheduler, "b")
        addr_a = backbone.attach("pop-a", a, BackboneLinkSpec(latency=0.05))
        addr_b = backbone.attach("pop-b", b, BackboneLinkSpec(latency=0.05))
        arrival = []
        b.bind_udp(7, lambda packet, dgram: arrival.append(scheduler.now))
        a.send_ip(IPv4Packet(src=addr_a, dst=addr_b, proto=IpProto.UDP,
                             payload=UdpDatagram(1, 7)))
        scheduler.run_for(2)
        # ARP round trip (≥ 2 × one-way each direction) + the data packet:
        # at minimum 3 × (0.05 + 0.05).
        assert arrival and arrival[0] >= 0.3


class TestCloudLab:
    def make_pop(self, scheduler):
        return PointOfPresence(
            scheduler, PopConfig(name="utah", pop_id=0),
            platform_asn=47065, platform_asns=frozenset({47065}),
            registry=GlobalNeighborRegistry(),
            enforcer_state=EnforcerState(),
        )

    def test_allocation_and_capacity(self, scheduler):
        site = CloudLabSite(scheduler, "cloudlab-utah",
                            self.make_pop(scheduler), capacity=2)
        first = site.allocate_node("x1")
        second = site.allocate_node("x2")
        assert first.name != second.name
        with pytest.raises(RuntimeError):
            site.allocate_node("x3")
        site.release_node(first.name)
        site.allocate_node("x3")

    def test_nodes_have_stacks(self, scheduler):
        site = CloudLabSite(scheduler, "cl", self.make_pop(scheduler))
        node = site.allocate_node("x1")
        assert isinstance(node.stack, NetworkStack)
        assert node.site == "cl"
