"""Resource pool tests (§4.2 numbered resources, §4.6 concurrency)."""

import pytest

from repro.netsim.addr import IPv4Prefix
from repro.platform.resources import (
    PLATFORM_ASN,
    PLATFORM_ASNS,
    ResourcePool,
    default_prefix_allocations,
)


def test_paper_resource_counts():
    """8 ASNs (three 4-byte), 40 /24s, one v6 /32 — §4.2."""
    assert len(PLATFORM_ASNS) == 8
    assert sum(1 for asn in PLATFORM_ASNS if asn >= (1 << 16)) == 3
    prefixes = default_prefix_allocations()
    assert len(prefixes) == 40
    assert all(p.length == 24 for p in prefixes)
    assert str(ResourcePool().ipv6) == "2804:269c::/32"


def test_allocate_and_release():
    pool = ResourcePool()
    lease = pool.allocate("x1", prefix_count=2)
    assert len(lease.prefixes) == 2
    assert pool.free_prefix_count == 38
    assert pool.lease_for("x1") is lease
    pool.release("x1")
    assert pool.free_prefix_count == 40
    assert pool.lease_for("x1") is None


def test_default_asn_is_platform():
    pool = ResourcePool()
    assert pool.allocate("x1").asn == PLATFORM_ASN


def test_duplicate_lease_rejected():
    pool = ResourcePool()
    pool.allocate("x1")
    with pytest.raises(ValueError):
        pool.allocate("x1")


def test_exhaustion():
    """IPv4 scarcity limits concurrency (§4.6)."""
    pool = ResourcePool()
    for index in range(40):
        pool.allocate(f"x{index}")
    with pytest.raises(RuntimeError):
        pool.allocate("one-too-many")


def test_lease_expiry_reaped():
    pool = ResourcePool()
    pool.allocate("short", now=0.0, duration=100.0)
    pool.allocate("long", now=0.0, duration=None)
    assert pool.reap_expired(now=50.0) == []
    assert pool.reap_expired(now=150.0) == ["short"]
    assert pool.lease_for("long") is not None


def test_owner_of_prefix():
    pool = ResourcePool()
    lease = pool.allocate("x1")
    inner = IPv4Prefix.from_address(lease.prefixes[0].network, 24)
    assert pool.owner_of(inner) == "x1"
    assert pool.owner_of(IPv4Prefix.parse("9.9.9.0/24")) is None
