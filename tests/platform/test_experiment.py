"""Experiment workflow tests: review policy, credentials, lifecycle."""

from repro.platform.experiment import (
    CapabilityRequest,
    Credentials,
    ExperimentProposal,
    ReviewDecision,
    review_proposal,
)
from repro.security.capabilities import Capability


def proposal(**kwargs):
    defaults = dict(
        name="x1", contact="a@b.edu", goals="study backup routes",
        execution_plan="announce with selective export",
    )
    defaults.update(kwargs)
    return ExperimentProposal(**defaults)


def test_reasonable_proposal_approved():
    decision, _reason = review_proposal(proposal())
    assert decision == ReviewDecision.APPROVE


def test_small_poisoning_request_approved():
    decision, _ = review_proposal(proposal(capability_requests=[
        CapabilityRequest(Capability.AS_PATH_POISONING, limit=2,
                          justification="probe backup routes"),
    ]))
    assert decision == ReviewDecision.APPROVE


def test_large_poisoning_request_rejected():
    """§7.1: 'rejected as risky an experiment proposal that required a
    large number of AS poisonings'."""
    decision, reason = review_proposal(proposal(capability_requests=[
        CapabilityRequest(Capability.AS_PATH_POISONING, limit=500),
    ]))
    assert decision == ReviewDecision.REJECT
    assert "poisoning" in reason


def test_unbounded_poisoning_rejected():
    decision, _ = review_proposal(proposal(capability_requests=[
        CapabilityRequest(Capability.AS_PATH_POISONING, limit=None),
    ]))
    assert decision == ReviewDecision.REJECT


def test_empty_goals_rejected():
    decision, reason = review_proposal(proposal(goals="  "))
    assert decision == ReviewDecision.REJECT
    assert "missing" in reason


def test_credentials_deterministic_and_distinct():
    a1 = Credentials.issue("x1")
    a2 = Credentials.issue("x1")
    b = Credentials.issue("x2")
    assert a1.certificate == a2.certificate
    assert a1.certificate != b.certificate
