"""Path attribute and route-model tests."""

import pytest
from hypothesis import given, strategies as st

from repro.bgp.attributes import (
    AsPath,
    AsPathSegment,
    Community,
    LargeCommunity,
    Route,
    SegmentType,
    local_route,
    originate,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix


class TestAsPath:
    def test_from_asns(self):
        path = AsPath.from_asns(100, 200, 300)
        assert path.asns == (100, 200, 300)
        assert path.length == 3
        assert path.origin_as == 300
        assert path.first_as == 100

    def test_empty_path(self):
        path = AsPath()
        assert path.length == 0
        assert path.origin_as is None
        assert str(path) == ""

    def test_as_set_counts_one_hop(self):
        path = AsPath((
            AsPathSegment(SegmentType.AS_SEQUENCE, (100,)),
            AsPathSegment(SegmentType.AS_SET, (1, 2, 3)),
        ))
        assert path.length == 2
        assert path.asns == (100, 1, 2, 3)

    def test_prepend_merges_into_sequence(self):
        path = AsPath.from_asns(100).prepended(47065, 3)
        assert path.asns == (47065, 47065, 47065, 100)
        assert len(path.segments) == 1

    def test_prepend_to_empty(self):
        assert AsPath().prepended(47065).asns == (47065,)

    def test_prepend_before_as_set(self):
        path = AsPath((AsPathSegment(SegmentType.AS_SET, (1, 2)),))
        prepended = path.prepended(100)
        assert prepended.segments[0].kind == SegmentType.AS_SEQUENCE
        assert prepended.asns == (100, 1, 2)

    def test_contains(self):
        assert AsPath.from_asns(100, 200).contains(200)
        assert not AsPath.from_asns(100, 200).contains(300)

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            AsPathSegment(SegmentType.AS_SEQUENCE, ())
        with pytest.raises(ValueError):
            AsPathSegment(SegmentType.AS_SEQUENCE, (0,))
        with pytest.raises(ValueError):
            AsPathSegment(SegmentType.AS_SEQUENCE, tuple(range(1, 300)))

    def test_str_with_set(self):
        path = AsPath((
            AsPathSegment(SegmentType.AS_SEQUENCE, (100,)),
            AsPathSegment(SegmentType.AS_SET, (1, 2)),
        ))
        assert str(path) == "100 {1 2}"

    @given(st.lists(st.integers(min_value=1, max_value=(1 << 32) - 1),
                    max_size=20))
    def test_length_matches_flat_sequence(self, asns):
        assert AsPath.from_asns(*asns).length == len(asns)


class TestCommunities:
    def test_parse_and_str(self):
        community = Community.parse("47065:2914")
        assert community == Community(47065, 2914)
        assert str(community) == "47065:2914"

    def test_packed_roundtrip(self):
        community = Community(47065, 100)
        assert Community.from_packed(community.packed()) == community

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Community(70000, 0)

    def test_large_community(self):
        lc = LargeCommunity.parse("47065:1:2")
        assert str(lc) == "47065:1:2"
        with pytest.raises(ValueError):
            LargeCommunity.parse("1:2")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_packed_property(self, packed):
        assert Community.from_packed(packed).packed() == packed


class TestRoute:
    def prefix(self):
        return IPv4Prefix.parse("184.164.224.0/24")

    def test_originate_carries_origin_asn(self):
        route = originate(self.prefix(), 47065,
                          IPv4Address.parse("10.0.0.1"))
        assert route.origin_as == 47065
        assert route.as_path.length == 1

    def test_local_route_empty_path(self):
        route = local_route(self.prefix())
        assert route.as_path.length == 0
        assert route.next_hop is None

    def test_with_next_hop_returns_new_object(self):
        route = local_route(self.prefix())
        updated = route.with_next_hop(IPv4Address.parse("1.2.3.4"))
        assert route.next_hop is None
        assert str(updated.next_hop) == "1.2.3.4"

    def test_community_manipulation(self):
        a = Community(47065, 1)
        b = Community(47065, 2)
        route = local_route(self.prefix()).add_communities(a, b)
        assert route.communities == {a, b}
        route = route.without_communities(a)
        assert route.communities == {b}
        route = route.with_communities(())
        assert route.communities == frozenset()

    def test_prepended(self):
        route = originate(self.prefix(), 100, IPv4Address(0))
        assert route.prepended(47065, 2).as_path.asns == (47065, 47065, 100)

    def test_path_id(self):
        route = local_route(self.prefix()).with_path_id(7)
        assert route.path_id == 7
        assert route.with_path_id(None).path_id is None

    def test_routes_hashable_and_comparable(self):
        a = local_route(self.prefix())
        b = local_route(self.prefix())
        assert a == b
        assert hash(a) == hash(b)

    def test_str_representation(self):
        route = originate(self.prefix(), 100, IPv4Address.parse("1.1.1.1"))
        text = str(route)
        assert "184.164.224.0/24" in text
        assert "1.1.1.1" in text
