"""Speaker integration tests: propagation, policy, ADD-PATH export,
split horizon, iBGP rules, max-prefix protection."""


from repro.bgp.attributes import Community, local_route, originate
from repro.bgp.policy import (
    Match,
    PolicyAction,
    PolicyResult,
    PolicyRule,
    RouteMap,
)
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix

P1 = IPv4Prefix.parse("10.10.0.0/16")


def make_speaker(scheduler, asn, router_id, **kwargs):
    return BgpSpeaker(
        scheduler,
        SpeakerConfig(asn=asn,
                      router_id=IPv4Address.parse(router_id), **kwargs),
    )


def connect(scheduler, a, b, *, name_a=None, name_b=None, asn_a=None,
            asn_b=None, **common):
    ca, cb = connect_pair(scheduler, rtt=0.02)
    a.attach_neighbor(
        NeighborConfig(
            name=name_a or f"to-{b.config.asn}", peer_asn=b.config.asn,
            local_address=a.config.router_id, **common,
        ),
        ca,
    )
    b.attach_neighbor(
        NeighborConfig(
            name=name_b or f"to-{a.config.asn}", peer_asn=a.config.asn,
            local_address=b.config.router_id, **common,
        ),
        cb,
    )


def test_route_propagates_two_hops(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    c = make_speaker(scheduler, 3, "3.3.3.3")
    connect(scheduler, a, b)
    connect(scheduler, b, c)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    best = c.best_route(P1)
    assert best is not None
    assert best.as_path.asns == (2, 1)


def test_withdraw_propagates(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    connect(scheduler, a, b)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    assert b.best_route(P1) is not None
    a.withdraw(P1)
    scheduler.run_for(2)
    assert b.best_route(P1) is None


def test_loop_prevention_drops_own_asn(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    connect(scheduler, a, b)
    scheduler.run_for(1)
    # b receives a route already containing ASN 2 → must discard.
    from repro.bgp.messages import UpdateMessage

    poisoned = originate(P1, 2, IPv4Address.parse("9.9.9.9")).prepended(1)
    a.neighbors[f"to-2"].session.send_update(
        UpdateMessage.announce([poisoned])
    )
    scheduler.run_for(2)
    assert b.best_route(P1) is None


def test_split_horizon(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    connect(scheduler, a, b)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    # b must not advertise the route back to a: a's rib should contain
    # only its local route (one candidate).
    assert len(a.loc_rib.candidates(P1)) == 1


def test_ibgp_not_reflected_between_ibgp_peers(scheduler):
    a = make_speaker(scheduler, 100, "1.1.1.1")
    b = make_speaker(scheduler, 100, "2.2.2.2")
    c = make_speaker(scheduler, 100, "3.3.3.3")
    connect(scheduler, a, b, name_a="ab", name_b="ba", is_ibgp=True)
    connect(scheduler, b, c, name_a="bc", name_b="cb", is_ibgp=True)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    assert b.best_route(P1) is not None
    assert c.best_route(P1) is None  # needs full mesh, as in real iBGP


def test_ibgp_does_not_prepend(scheduler):
    a = make_speaker(scheduler, 100, "1.1.1.1")
    b = make_speaker(scheduler, 100, "2.2.2.2")
    connect(scheduler, a, b, is_ibgp=True)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    assert b.best_route(P1).as_path.length == 0


def test_transparent_route_server_semantics(scheduler):
    rs = make_speaker(scheduler, 6777, "9.9.9.9")
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    connect(scheduler, a, rs, name_a="to-rs", name_b="member-a",
            transparent=True, next_hop_self=False)
    connect(scheduler, b, rs, name_a="to-rs", name_b="member-b",
            transparent=True, next_hop_self=False)
    a.originate(local_route(P1, next_hop=IPv4Address.parse("7.7.7.7")))
    scheduler.run_for(2)
    best = b.best_route(P1)
    assert best is not None
    assert 6777 not in best.as_path.asns  # RS ASN absent
    assert str(best.next_hop) == "7.7.7.7"  # next hop preserved


def test_import_policy_rejects(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    reject_ten = RouteMap(rules=[PolicyRule(
        match=Match(prefixes=(
            __import__("repro.bgp.policy", fromlist=["PrefixMatch"])
            .PrefixMatch(IPv4Prefix.parse("10.0.0.0/8"), ge=8, le=32),
        )),
        result=PolicyResult.REJECT,
    )])
    ca, cb = connect_pair(scheduler, rtt=0.02)
    a.attach_neighbor(NeighborConfig(name="to-b", peer_asn=2,
                                     local_address=a.config.router_id), ca)
    b.attach_neighbor(NeighborConfig(name="to-a", peer_asn=1,
                                     local_address=b.config.router_id,
                                     import_policy=reject_ten), cb)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    a.originate(local_route(IPv4Prefix.parse("20.0.0.0/16"),
                            next_hop=a.config.router_id))
    scheduler.run_for(2)
    assert b.best_route(P1) is None
    assert b.best_route(IPv4Prefix.parse("20.0.0.0/16")) is not None


def test_export_policy_transforms(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    add_tag = RouteMap(rules=[PolicyRule(
        action=PolicyAction(add_communities=(Community(1, 99),)),
        result=PolicyResult.ACCEPT,
    )])
    ca, cb = connect_pair(scheduler, rtt=0.02)
    a.attach_neighbor(NeighborConfig(name="to-b", peer_asn=2,
                                     local_address=a.config.router_id,
                                     export_policy=add_tag), ca)
    b.attach_neighbor(NeighborConfig(name="to-a", peer_asn=1,
                                     local_address=b.config.router_id), cb)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    assert Community(1, 99) in b.best_route(P1).communities


def test_addpath_exports_all_candidates(scheduler):
    hub = make_speaker(scheduler, 10, "10.0.0.1")
    left = make_speaker(scheduler, 1, "1.1.1.1")
    right = make_speaker(scheduler, 2, "2.2.2.2")
    watcher = make_speaker(scheduler, 99, "99.0.0.1")
    connect(scheduler, left, hub)
    connect(scheduler, right, hub)
    connect(scheduler, hub, watcher, addpath=True)
    left.originate(local_route(P1, next_hop=left.config.router_id))
    right.originate(local_route(P1, next_hop=right.config.router_id))
    scheduler.run_for(3)
    candidates = watcher.loc_rib.candidates(P1)
    assert len(candidates) == 2
    path_ids = {entry.route.path_id for entry in candidates}
    assert len(path_ids) == 2


def test_best_only_without_addpath(scheduler):
    hub = make_speaker(scheduler, 10, "10.0.0.1")
    left = make_speaker(scheduler, 1, "1.1.1.1")
    right = make_speaker(scheduler, 2, "2.2.2.2")
    watcher = make_speaker(scheduler, 99, "99.0.0.1")
    connect(scheduler, left, hub)
    connect(scheduler, right, hub)
    connect(scheduler, hub, watcher)
    left.originate(local_route(P1, next_hop=left.config.router_id))
    right.originate(local_route(P1, next_hop=right.config.router_id))
    scheduler.run_for(3)
    assert len(watcher.loc_rib.candidates(P1)) == 1


def test_max_prefixes_resets_session(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    ca, cb = connect_pair(scheduler, rtt=0.02)
    a.attach_neighbor(NeighborConfig(name="to-b", peer_asn=2,
                                     local_address=a.config.router_id), ca)
    b.attach_neighbor(NeighborConfig(name="to-a", peer_asn=1,
                                     local_address=b.config.router_id,
                                     max_prefixes=3), cb)
    for index in range(6):
        a.originate(local_route(IPv4Prefix.parse(f"10.{index}.0.0/16"),
                                next_hop=a.config.router_id))
    scheduler.run_for(3)
    assert not b.neighbors["to-a"].established


def test_session_loss_withdraws_routes(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1")
    b = make_speaker(scheduler, 2, "2.2.2.2")
    c = make_speaker(scheduler, 3, "3.3.3.3")
    connect(scheduler, a, b)
    connect(scheduler, b, c)
    a.originate(local_route(P1, next_hop=a.config.router_id))
    scheduler.run_for(2)
    assert c.best_route(P1) is not None
    b.remove_neighbor("to-1")
    scheduler.run_for(2)
    assert c.best_route(P1) is None


def test_mrai_batches_updates(scheduler):
    a = make_speaker(scheduler, 1, "1.1.1.1", mrai=1.0)
    b = make_speaker(scheduler, 2, "2.2.2.2")
    connect(scheduler, a, b)
    scheduler.run_for(1)
    for index in range(10):
        a.originate(local_route(IPv4Prefix.parse(f"10.{index}.0.0/16"),
                                next_hop=a.config.router_id))
    scheduler.run_for(0.5)
    assert b.best_route(IPv4Prefix.parse("10.0.0.0/16")) is None
    scheduler.run_for(2)
    assert b.best_route(IPv4Prefix.parse("10.0.0.0/16")) is not None
    # All 10 prefixes share attributes → batched into few updates.
    sessions = a.neighbors["to-2"].session
    assert sessions.stats.updates_sent <= 3
