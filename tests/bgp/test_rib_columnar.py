"""§6g Loc-RIB engine tests: columnar storage and incremental best-path.

Two backends (dict-backed :class:`LocRib`, packed :class:`ColumnarLocRib`)
times two reselect modes (incremental fast paths on/off) must all agree —
on the best entry, the candidate order, and the decision-process stats.
The hypothesis property drives arbitrary insert/withdraw sequences with
MED-heavy attribute sets (the non-transitive corner of RFC 4271 §9.1.2.2)
and checks the incremental state against a from-scratch full reselect
after every single operation.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro import perf
from repro.bgp.attributes import AsPath, Origin, PathAttributes, Route
from repro.bgp.decision import best_path
from repro.bgp.rib import (
    ColumnarLocRib,
    LocRib,
    _RIB_ATTR_POOL,
    make_loc_rib,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix

PREFIXES = [IPv4Prefix.parse(f"10.{i}.0.0/16") for i in range(4)]
PEERS = ["pa", "pb", "pc"]
NH = IPv4Address.parse("1.1.1.1")

# Same-length AS paths differing in first AS and MED: the MED step only
# compares routes entering from the same neighboring AS, which makes the
# comparator non-transitive — the corner the incremental fast paths must
# not cut.
ATTRS = [
    PathAttributes(origin=Origin.IGP, as_path=AsPath.from_asns(first, 900),
                   next_hop=NH, med=med)
    for first, med in [
        (100, 0), (100, 50), (200, 10), (200, 40), (300, 20),
    ]
]


def _ops():
    return st.lists(
        st.tuples(
            st.sampled_from(["replace", "remove", "remove_peer"]),
            st.sampled_from(PEERS),
            st.integers(min_value=0, max_value=len(PREFIXES) - 1),
            st.integers(min_value=0, max_value=len(ATTRS) - 1),
            st.sampled_from([None, 1, 2]),
        ),
        min_size=1, max_size=40,
    )


def _apply(rib, op):
    kind, peer, prefix_index, attr_index, path_id = op
    prefix = PREFIXES[prefix_index]
    if kind == "replace":
        rib.replace(peer, Route(prefix=prefix, attributes=ATTRS[attr_index],
                                path_id=path_id))
    elif kind == "remove":
        rib.remove(peer, prefix, path_id)
    else:
        rib.remove_peer(peer)


def _entry_key(entry):
    return None if entry is None else (entry.peer, entry.route)


def _state(rib):
    return {
        prefix: (
            _entry_key(rib.best(prefix)),
            [_entry_key(entry) for entry in rib.candidates(prefix)],
        )
        for prefix in PREFIXES
    }


@given(ops=_ops())
@settings(max_examples=60, deadline=None)
def test_incremental_equals_full_reselect_after_every_op(ops):
    """For both backends: the incremental RIB matches a reference RIB
    running full reselects, checked after *every* operation."""
    with perf.flags(incremental_bestpath=True):
        fast_ribs = [LocRib(select=best_path), ColumnarLocRib(select=best_path)]
    reference = LocRib(select=best_path)
    for op in ops:
        with perf.flags(incremental_bestpath=True):
            for rib in fast_ribs:
                _apply(rib, op)
        with perf.flags(incremental_bestpath=False):
            _apply(reference, op)
        expected = _state(reference)
        for rib in fast_ribs:
            assert _state(rib) == expected


@given(ops=_ops())
@settings(max_examples=40, deadline=None)
def test_backends_agree_on_stats_and_change_signals(ops):
    """Both backends report identical best-change booleans and identical
    always-on decision stats for the same operation stream."""
    for incremental in (False, True):
        with perf.flags(incremental_bestpath=incremental):
            dict_rib = LocRib(select=best_path)
            col_rib = ColumnarLocRib(select=best_path)
            for op in ops:
                kind, peer, prefix_index, attr_index, path_id = op
                prefix = PREFIXES[prefix_index]
                if kind == "replace":
                    route = Route(prefix=prefix, attributes=ATTRS[attr_index],
                                  path_id=path_id)
                    assert dict_rib.replace(peer, route) == \
                        col_rib.replace(peer, route)
                elif kind == "remove":
                    assert dict_rib.remove(peer, prefix, path_id) == \
                        col_rib.remove(peer, prefix, path_id)
                else:
                    assert dict_rib.remove_peer(peer) == \
                        col_rib.remove_peer(peer)
            assert dict_rib.stats == col_rib.stats
            assert len(dict_rib) == len(col_rib)
            assert dict_rib.prefix_count == col_rib.prefix_count


def test_columnar_replacement_moves_to_end():
    """pop-then-append: re-announcing a candidate moves it to the end of
    the fold order, exactly like the dict backend."""
    with perf.flags(incremental_bestpath=False):
        for rib in (LocRib(select=best_path), ColumnarLocRib(select=best_path)):
            for peer, attrs in zip(PEERS, ATTRS):
                rib.replace(peer, Route(prefix=PREFIXES[0], attributes=attrs))
            rib.replace(PEERS[0], Route(prefix=PREFIXES[0],
                                        attributes=ATTRS[3]))
            assert [e.peer for e in rib.candidates(PREFIXES[0])] == \
                [PEERS[1], PEERS[2], PEERS[0]]


def test_columnar_path_id_zero_distinct_from_none():
    """Wire path id 0 is a valid id; the ``-1`` sentinel for ``None``
    must not collide with it."""
    rib = ColumnarLocRib(select=best_path)
    rib.replace("pa", Route(prefix=PREFIXES[0], attributes=ATTRS[0],
                            path_id=0))
    rib.replace("pa", Route(prefix=PREFIXES[0], attributes=ATTRS[1],
                            path_id=None))
    assert len(rib) == 2
    assert rib.remove("pa", PREFIXES[0], 0)
    assert [e.path_id for e in rib.candidates(PREFIXES[0])] == [None]


def test_columnar_interns_equal_attributes():
    """Distinct-but-equal attribute objects share one handle (and one
    canonical object), so candidate storage is three ints per route."""
    rib = ColumnarLocRib(select=best_path)
    for index, prefix in enumerate(PREFIXES):
        copy = PathAttributes(
            origin=ATTRS[0].origin, as_path=ATTRS[0].as_path,
            next_hop=ATTRS[0].next_hop, med=ATTRS[0].med,
        )
        rib.replace("pa", Route(prefix=prefix, attributes=copy))
    assert len(rib._attr_values) == 1
    materialized = {
        id(rib.best(prefix).route.attributes) for prefix in PREFIXES
    }
    assert len(materialized) == 1  # one shared canonical object


def test_make_loc_rib_dispatches_on_flag():
    with perf.flags(rib_columnar=True):
        assert isinstance(make_loc_rib(best_path), ColumnarLocRib)
    with perf.flags(rib_columnar=False):
        rib = make_loc_rib(best_path)
        assert isinstance(rib, LocRib)
        assert not isinstance(rib, ColumnarLocRib)


def test_attr_pool_registered_with_cache_clearers():
    rib = ColumnarLocRib(select=best_path)
    rib.replace("pa", Route(prefix=PREFIXES[0], attributes=ATTRS[0]))
    assert len(_RIB_ATTR_POOL) > 0
    perf.clear_caches()
    assert len(_RIB_ATTR_POOL) == 0
    # The pool is a pure lookaside: clearing it mid-life must not affect
    # the RIB's own handle tables or decisions.
    assert rib.best(PREFIXES[0]).route.attributes == ATTRS[0]
    rib.replace("pb", Route(prefix=PREFIXES[0], attributes=ATTRS[1]))
    assert len(rib.candidates(PREFIXES[0])) == 2


def test_best_routes_iterates_all_prefixes():
    for rib in (LocRib(select=best_path), ColumnarLocRib(select=best_path)):
        for prefix, (peer, attrs) in zip(
            PREFIXES, itertools.cycle([("pa", ATTRS[0]), ("pb", ATTRS[1])])
        ):
            rib.replace(peer, Route(prefix=prefix, attributes=attrs))
        assert {entry.route.prefix for entry in rib.best_routes()} == \
            set(PREFIXES)
