"""Routing-policy engine tests."""

import pytest

from repro.bgp.attributes import Community, LargeCommunity, originate
from repro.bgp.policy import (
    Match,
    PolicyAction,
    PolicyResult,
    PolicyRule,
    PrefixMatch,
    RouteMap,
    chain,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix

NH = IPv4Address.parse("1.1.1.1")


def route(prefix="10.0.0.0/8", origin_asn=100, communities=()):
    return originate(IPv4Prefix.parse(prefix), origin_asn, NH,
                     communities=communities)


class TestPrefixMatch:
    def test_exact(self):
        match = PrefixMatch(IPv4Prefix.parse("10.0.0.0/8"))
        assert match.matches(IPv4Prefix.parse("10.0.0.0/8"))
        assert not match.matches(IPv4Prefix.parse("10.1.0.0/16"))

    def test_orlonger(self):
        match = PrefixMatch(IPv4Prefix.parse("10.0.0.0/8"), ge=8, le=32)
        assert match.matches(IPv4Prefix.parse("10.1.0.0/16"))
        assert match.matches(IPv4Prefix.parse("10.0.0.0/8"))
        assert not match.matches(IPv4Prefix.parse("11.0.0.0/8"))

    def test_range(self):
        match = PrefixMatch(IPv4Prefix.parse("10.0.0.0/8"), ge=16, le=24)
        assert match.matches(IPv4Prefix.parse("10.1.0.0/20"))
        assert not match.matches(IPv4Prefix.parse("10.0.0.0/8"))
        assert not match.matches(IPv4Prefix.parse("10.0.0.0/28"))


class TestMatch:
    def test_empty_matches_everything(self):
        assert Match().matches(route())

    def test_communities_all_required(self):
        c1, c2 = Community(1, 1), Community(2, 2)
        match = Match(communities=(c1, c2))
        assert match.matches(route(communities=(c1, c2)))
        assert not match.matches(route(communities=(c1,)))

    def test_any_community_of(self):
        c1, c2 = Community(1, 1), Community(2, 2)
        match = Match(any_community_of=(c1, c2))
        assert match.matches(route(communities=(c2,)))
        assert not match.matches(route())

    def test_as_path_contains(self):
        match = Match(as_path_contains=100)
        assert match.matches(route(origin_asn=100))
        assert not match.matches(route(origin_asn=200))

    def test_origin_and_first_as(self):
        r = route(origin_asn=100).prepended(999)
        assert Match(origin_as_in=frozenset({100})).matches(r)
        assert Match(first_as_in=frozenset({999})).matches(r)
        assert not Match(first_as_in=frozenset({100})).matches(r)

    def test_max_path_length(self):
        r = route().prepended(100, 5)
        assert not Match(max_as_path_length=3).matches(r)
        assert Match(max_as_path_length=10).matches(r)

    def test_unknown_attributes_flag(self):
        assert Match(has_unknown_attributes=False).matches(route())
        assert not Match(has_unknown_attributes=True).matches(route())

    def test_custom_predicate(self):
        match = Match(custom=lambda r: r.origin_as == 100)
        assert match.matches(route(origin_asn=100))
        assert not match.matches(route(origin_asn=200))


class TestAction:
    def test_set_local_pref_and_med(self):
        action = PolicyAction(set_local_pref=200, set_med=5)
        out = action.apply(route())
        assert out.attributes.local_pref == 200
        assert out.attributes.med == 5

    def test_prepend(self):
        out = PolicyAction(prepend_asn=47065, prepend_count=2).apply(route())
        assert out.as_path.asns[:2] == (47065, 47065)

    def test_community_add_remove_clear(self):
        c1, c2 = Community(1, 1), Community(2, 2)
        base = route(communities=(c1,))
        assert PolicyAction(add_communities=(c2,)).apply(base).communities == {
            c1, c2
        }
        assert PolicyAction(remove_communities=(c1,)).apply(base).communities == (
            frozenset()
        )
        assert PolicyAction(clear_communities=True).apply(base).communities == (
            frozenset()
        )

    def test_large_communities(self):
        lc = LargeCommunity(47065, 1, 2)
        out = PolicyAction(add_large_communities=(lc,)).apply(route())
        assert lc in out.attributes.large_communities

    def test_custom_transform(self):
        out = PolicyAction(custom=lambda r: r.prepended(1)).apply(route())
        assert out.as_path.first_as == 1


class TestRouteMap:
    def test_first_matching_rule_terminates(self):
        c = Community(1, 1)
        route_map = RouteMap(rules=[
            PolicyRule(match=Match(any_community_of=(c,)),
                       result=PolicyResult.REJECT),
            PolicyRule(match=Match(), result=PolicyResult.ACCEPT),
        ])
        assert route_map.apply(route(communities=(c,))) is None
        assert route_map.apply(route()) is not None

    def test_continue_chains_actions(self):
        route_map = RouteMap(rules=[
            PolicyRule(match=Match(),
                       action=PolicyAction(set_local_pref=200),
                       result=PolicyResult.CONTINUE),
            PolicyRule(match=Match(),
                       action=PolicyAction(prepend_asn=9),
                       result=PolicyResult.ACCEPT),
        ])
        out = route_map.apply(route())
        assert out.attributes.local_pref == 200
        assert out.as_path.first_as == 9

    def test_default_reject(self):
        route_map = RouteMap(default=PolicyResult.REJECT)
        assert route_map.apply(route()) is None

    def test_default_continue_invalid(self):
        with pytest.raises(ValueError):
            RouteMap(default=PolicyResult.CONTINUE)

    def test_helpers(self):
        assert RouteMap.accept_all().apply(route()) is not None
        assert RouteMap.reject_all().apply(route()) is None

    def test_evaluation_counter(self):
        route_map = RouteMap.accept_all()
        route_map.apply(route())
        route_map.apply(route())
        assert route_map.evaluations == 2


class TestChain:
    def test_chain_stops_at_rejection(self):
        accept = RouteMap.accept_all()
        reject = RouteMap.reject_all()
        assert chain(route(), accept, reject, accept) is None
        assert chain(route(), accept, None, accept) is not None

    def test_chain_applies_transforms_in_order(self):
        first = RouteMap(rules=[PolicyRule(
            action=PolicyAction(prepend_asn=1), result=PolicyResult.ACCEPT
        )])
        second = RouteMap(rules=[PolicyRule(
            action=PolicyAction(prepend_asn=2), result=PolicyResult.ACCEPT
        )])
        out = chain(route(), first, second)
        assert out.as_path.asns[:2] == (2, 1)
