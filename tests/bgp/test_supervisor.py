"""Session supervision: re-dial, backoff determinism, flap damping."""

from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.supervisor import SessionSupervisor, SupervisorConfig
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.sim import Scheduler

DEST = IPv4Prefix.parse("203.0.113.0/24")


def supervised_pair(scheduler, supervisor_config=None, gr=False):
    """Speaker A supervises its session to B; B re-attaches on re-dial."""
    a = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65001, router_id=IPv4Address.parse("1.1.1.1")))
    b = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65002, router_id=IPv4Address.parse("2.2.2.2")))
    channel_a, channel_b = connect_pair(scheduler, rtt=0.02)
    b.attach_neighbor(
        NeighborConfig(name="a", graceful_restart=gr), channel_b
    )

    def channel_factory():
        new_a, new_b = connect_pair(scheduler, rtt=0.02)
        b.reattach_neighbor("a", new_b)
        return new_a

    a.attach_neighbor(
        NeighborConfig(name="b", graceful_restart=gr),
        channel_a,
        channel_factory=channel_factory,
        supervisor_config=supervisor_config,
    )
    b.originate(local_route(DEST, next_hop=IPv4Address.parse("2.2.2.2")))
    scheduler.run_for(2)
    assert a.neighbors["b"].established
    assert a.best_route(DEST) is not None
    return a, b


def kill_transport(b):
    """Non-administrative loss: B's end of the transport dies."""
    b.neighbors["a"].session.channel.close()


def test_supervisor_redials_after_transport_loss(scheduler):
    a, b = supervised_pair(
        scheduler, SupervisorConfig(min_backoff=0.5, seed=7)
    )
    kill_transport(b)
    scheduler.run_for(5)
    neighbor = a.neighbors["b"]
    assert neighbor.established
    assert neighbor.supervisor.reconnects == 1
    assert a.best_route(DEST) is not None  # routes relearned


def test_admin_shutdown_is_not_resurrected(scheduler):
    a, b = supervised_pair(scheduler, SupervisorConfig(min_backoff=0.5))
    a.neighbors["b"].session.shutdown()
    scheduler.run_for(30)
    neighbor = a.neighbors["b"]
    assert not neighbor.established
    assert not neighbor.supervisor.pending
    assert neighbor.supervisor.reconnects == 0


def test_flap_damping_suppresses_then_recovers(scheduler):
    config = SupervisorConfig(
        min_backoff=0.5, flap_threshold=3, flap_window=120.0,
        suppress_time=20.0, seed=1,
    )
    a, b = supervised_pair(scheduler, config)
    supervisor = a.neighbors["b"].supervisor
    for _ in range(3):
        kill_transport(b)
        scheduler.run_for(5)
    assert supervisor.suppressions == 1
    # During suppression the session stays down …
    assert not a.neighbors["b"].established
    # … and after the cool-down the supervisor re-dials and heals.
    scheduler.run_for(25)
    assert a.neighbors["b"].established


def test_gives_up_after_max_attempts(scheduler):
    attempts_config = SupervisorConfig(
        min_backoff=0.1, max_backoff=0.2, max_attempts=3, seed=2
    )
    supervisor = SessionSupervisor(
        scheduler,
        peer_key="dead-peer",
        channel_factory=lambda: None,  # transport never comes back
        session_factory=lambda channel: None,
        config=attempts_config,
    )
    # Fabricate supervision of a real session that then dies.
    channel_a, channel_b = connect_pair(scheduler, rtt=0.01)
    from repro.bgp.session import BgpSession, SessionConfig

    session = BgpSession(
        scheduler,
        SessionConfig(local_asn=65001,
                      local_id=IPv4Address.parse("1.1.1.1"),
                      peer_asn=None),
        channel_a,
        on_update=lambda session, update: None,
    )
    supervisor.adopt(session)
    session.start()
    channel_b.close()
    scheduler.run_for(30)
    assert supervisor.gave_up
    assert not supervisor.pending
    assert supervisor.attempts == attempts_config.max_attempts


def _schedule_for(seed):
    """Drive a supervisor through a deterministic failure sequence."""
    scheduler = Scheduler()
    supervisor = SessionSupervisor(
        scheduler,
        peer_key="peer-x",
        channel_factory=lambda: None,
        session_factory=lambda channel: None,
        config=SupervisorConfig(max_attempts=6, seed=seed),
    )
    channel_a, channel_b = connect_pair(scheduler, rtt=0.01)
    from repro.bgp.session import BgpSession, SessionConfig

    session = BgpSession(
        scheduler,
        SessionConfig(local_asn=65001,
                      local_id=IPv4Address.parse("1.1.1.1"),
                      peer_asn=None),
        channel_a,
        on_update=lambda session, update: None,
    )
    supervisor.adopt(session)
    session.start()
    channel_b.close()
    scheduler.run_for(600)
    assert supervisor.gave_up
    return supervisor.schedule


def test_backoff_schedule_byte_identical_for_same_seed():
    first = _schedule_for(42)
    second = _schedule_for(42)
    assert len(first) >= 5
    assert repr(first) == repr(second)  # byte-identical, not just approx


def test_backoff_schedule_differs_across_seeds():
    assert repr(_schedule_for(1)) != repr(_schedule_for(2))


def test_backoff_grows_and_respects_ceiling():
    schedule = _schedule_for(3)
    config = SupervisorConfig()
    assert all(delay >= config.idle_hold_floor for delay in schedule)
    assert all(
        delay <= config.max_backoff * (1 + config.jitter)
        for delay in schedule
    )
    # Exponential growth: later delays dominate earlier ones.
    assert schedule[-1] > schedule[0]
