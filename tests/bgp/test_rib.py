"""RIB tests: Adj-RIB-In/Out and Loc-RIB selection bookkeeping."""

from repro.bgp.attributes import originate
from repro.bgp.decision import best_path
from repro.bgp.rib import AdjRibIn, AdjRibOut, LocRib
from repro.netsim.addr import IPv4Address, IPv4Prefix

P1 = IPv4Prefix.parse("10.0.0.0/8")
P2 = IPv4Prefix.parse("20.0.0.0/8")
NH = IPv4Address.parse("1.1.1.1")


class TestAdjRibIn:
    def test_update_and_withdraw(self):
        rib = AdjRibIn("peer")
        route = originate(P1, 100, NH)
        assert rib.update(route) is None
        assert len(rib) == 1
        assert rib.withdraw(P1) == route
        assert len(rib) == 0
        assert rib.withdraw(P1) is None

    def test_implicit_replacement(self):
        rib = AdjRibIn("peer")
        rib.update(originate(P1, 100, NH))
        replaced = rib.update(originate(P1, 200, NH))
        assert replaced is not None
        assert replaced.origin_as == 100
        assert len(rib) == 1

    def test_addpath_multiple_paths(self):
        rib = AdjRibIn("peer")
        rib.update(originate(P1, 100, NH).with_path_id(1))
        rib.update(originate(P1, 200, NH).with_path_id(2))
        assert len(rib) == 2
        assert len(rib.routes_for(P1)) == 2
        rib.withdraw(P1, 1)
        assert len(rib.routes_for(P1)) == 1

    def test_clear_returns_dropped(self):
        rib = AdjRibIn("peer")
        rib.update(originate(P1, 100, NH))
        rib.update(originate(P2, 100, NH))
        dropped = rib.clear()
        assert len(dropped) == 2
        assert len(rib) == 0


class TestLocRib:
    def make(self):
        return LocRib(select=best_path)

    def test_best_changes_on_first_route(self):
        rib = self.make()
        assert rib.replace("a", originate(P1, 100, NH)) is True
        assert rib.best(P1).peer == "a"

    def test_shorter_path_becomes_best(self):
        rib = self.make()
        rib.replace("a", originate(P1, 100, NH).prepended(999))
        assert rib.best(P1).peer == "a"
        changed = rib.replace("b", originate(P1, 100, NH))
        assert changed is True
        assert rib.best(P1).peer == "b"

    def test_worse_path_does_not_change_best(self):
        rib = self.make()
        rib.replace("a", originate(P1, 100, NH))
        changed = rib.replace("b", originate(P1, 100, NH).prepended(999, 3))
        assert changed is False
        assert rib.best(P1).peer == "a"

    def test_remove_candidate_reselects(self):
        rib = self.make()
        rib.replace("a", originate(P1, 100, NH))
        rib.replace("b", originate(P1, 100, NH).prepended(999))
        assert rib.remove("a", P1) is True
        assert rib.best(P1).peer == "b"

    def test_remove_last_clears_best(self):
        rib = self.make()
        rib.replace("a", originate(P1, 100, NH))
        assert rib.remove("a", P1) is True
        assert rib.best(P1) is None
        assert rib.prefix_count == 0

    def test_remove_peer_bulk(self):
        rib = self.make()
        rib.replace("a", originate(P1, 100, NH))
        rib.replace("a", originate(P2, 100, NH))
        rib.replace("b", originate(P1, 100, NH).prepended(999))
        changed = rib.remove_peer("a")
        assert set(changed) == {P1, P2}
        assert rib.best(P1).peer == "b"
        assert rib.best(P2) is None

    def test_candidates_listing(self):
        rib = self.make()
        rib.replace("a", originate(P1, 100, NH))
        rib.replace("b", originate(P1, 200, NH))
        assert len(rib.candidates(P1)) == 2
        assert len(rib) == 2


class TestAdjRibOut:
    def test_dedup_identical_announcement(self):
        rib = AdjRibOut("peer")
        route = originate(P1, 100, NH)
        assert rib.record_announce(route) is True
        assert rib.record_announce(route) is False
        assert rib.record_announce(route.prepended(999)) is True

    def test_withdraw_returns_advertised(self):
        rib = AdjRibOut("peer")
        route = originate(P1, 100, NH)
        rib.record_announce(route)
        assert rib.record_withdraw(P1) == route
        assert rib.record_withdraw(P1) is None

    def test_path_id_keys_independent(self):
        rib = AdjRibOut("peer")
        rib.record_announce(originate(P1, 100, NH).with_path_id(1))
        rib.record_announce(originate(P1, 200, NH).with_path_id(2))
        assert len(rib) == 2
        rib.record_withdraw(P1, 1)
        assert len(rib) == 1
