"""Socket transport tests: framing, real loopback TCP, leak hygiene.

The Hypothesis property is the framing contract the fleet rests on: TCP
may deliver a valid frame stream in *any* byte-level chunking (split
mid-marker, mid-length-field, or with several frames coalesced into one
read), and both :class:`FrameReassembler` and :class:`MessageDecoder`
must reconstruct the identical frame/message stream.

Loopback delivery on this platform is asynchronous — ``send`` returns
before the peer can read the bytes — so every socket assertion polls
with short *blocking* pumps instead of assuming a zero-timeout pump
sees everything (the same discipline the fleet settle barrier uses).
"""

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.messages import (
    HEADER_SIZE,
    KeepaliveMessage,
    MessageDecoder,
    UpdateMessage,
)
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.transport import (
    FrameReassembler,
    FramingError,
    SocketChannel,
    SocketListener,
    SocketPoller,
    open_socket_count,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.sim.scheduler import Scheduler


def _update_frame(index: int) -> bytes:
    return UpdateMessage(
        withdrawn=((IPv4Prefix.parse(f"10.{index % 200}.{index % 250}.0/24"),
                    None),),
    ).encode()


def _valid_frames(count: int) -> list:
    frames = []
    for index in range(count):
        frames.append(_update_frame(index) if index % 3 else
                      KeepaliveMessage().encode())
    return frames


# ---------------------------------------------------------------------------
# FrameReassembler units
# ---------------------------------------------------------------------------


def test_reassembler_whole_frame():
    frame = KeepaliveMessage().encode()
    assert FrameReassembler().feed(frame) == [frame]


def test_reassembler_byte_at_a_time():
    frame = _update_frame(1)
    reassembler = FrameReassembler()
    out = []
    for offset in range(len(frame)):
        out += reassembler.feed(frame[offset:offset + 1])
    assert out == [frame]
    assert reassembler.pending() == 0


def test_reassembler_coalesced_with_partial_tail():
    frames = _valid_frames(3)
    stream = b"".join(frames)
    reassembler = FrameReassembler()
    head, tail = stream[:-5], stream[-5:]
    assert reassembler.feed(head) == frames[:-1]
    assert reassembler.pending() == len(frames[-1]) - 5
    assert reassembler.feed(tail) == frames[-1:]


def test_reassembler_rejects_bad_marker():
    with pytest.raises(FramingError):
        FrameReassembler().feed(b"\x00" * HEADER_SIZE)


def test_reassembler_rejects_bad_length():
    frame = bytearray(KeepaliveMessage().encode())
    frame[16:18] = (HEADER_SIZE - 1).to_bytes(2, "big")
    with pytest.raises(FramingError):
        FrameReassembler().feed(bytes(frame))


# ---------------------------------------------------------------------------
# Hypothesis: any chunking decodes to the identical stream
# ---------------------------------------------------------------------------


@st.composite
def _chunked_stream(draw):
    """A valid frame stream plus an arbitrary chunking of its bytes."""
    frames = _valid_frames(draw(st.integers(min_value=1, max_value=8)))
    stream = b"".join(frames)
    cuts = draw(st.lists(
        st.integers(min_value=1, max_value=len(stream) - 1),
        max_size=len(stream), unique=True,
    )) if len(stream) > 1 else []
    bounds = [0, *sorted(cuts), len(stream)]
    chunks = [stream[a:b] for a, b in zip(bounds, bounds[1:])]
    return frames, chunks


@settings(max_examples=200, deadline=None)
@given(_chunked_stream())
def test_any_rechunking_reassembles_identically(case):
    frames, chunks = case
    reassembler = FrameReassembler()
    out = []
    for chunk in chunks:
        out += reassembler.feed(chunk)
    assert out == frames
    assert reassembler.pending() == 0


@settings(max_examples=200, deadline=None)
@given(_chunked_stream())
def test_any_rechunking_decodes_identical_messages(case):
    frames, chunks = case
    reference = MessageDecoder()
    reference.feed(b"".join(frames))
    expected = list(reference)
    decoder = MessageDecoder()
    got = []
    for chunk in chunks:
        decoder.feed(chunk)
        got += list(decoder)
    assert got == expected


# ---------------------------------------------------------------------------
# Real loopback TCP
# ---------------------------------------------------------------------------


def _pump_until(poller, predicate, timeout: float = 5.0):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            pytest.fail("condition not reached within timeout")
        poller.pump(0.05)


def test_socket_echo_roundtrip():
    poller = SocketPoller()
    accepted = []
    received = []
    listener = SocketListener(poller, on_accept=accepted.append)
    try:
        client = SocketChannel.connect(poller, "127.0.0.1", listener.port)
        client.on_data = received.append
        _pump_until(poller, lambda: accepted)
        server = accepted[0]
        echoed = []
        server.on_data = lambda data: (echoed.append(data),
                                       server.send(data))
        client.send(b"ping over real tcp")
        _pump_until(poller, lambda: received)
        assert b"".join(echoed) == b"ping over real tcp"
        assert b"".join(received) == b"ping over real tcp"
        assert client.tx_bytes == server.rx_bytes == len(b"ping over real tcp")
        client.close()
        server.close()
        listener.close()
    finally:
        poller.close()


def test_bgp_session_over_real_socket():
    """Two speakers, one real TCP connection: establish and exchange."""
    scheduler = Scheduler()
    poller = SocketPoller()
    left = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65001, router_id=IPv4Address.parse("192.0.2.1"), hold_time=0))
    right = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65002, router_id=IPv4Address.parse("192.0.2.2"), hold_time=0))

    def on_accept(channel):
        # Attach inside the accept callback: bytes that race the accept
        # must land in the session's handler, not a void.
        right.attach_neighbor(NeighborConfig(
            name="left", peer_asn=None,
            local_address=IPv4Address.parse("192.0.2.2")), channel)

    listener = SocketListener(poller, on_accept=on_accept)
    try:
        channel = SocketChannel.connect(poller, "127.0.0.1", listener.port)
        left.attach_neighbor(NeighborConfig(
            name="right", peer_asn=None,
            local_address=IPv4Address.parse("192.0.2.1")), channel)

        def drain():
            poller.pump(0.02)
            while scheduler.run_until(scheduler.now):
                pass

        _pump_until(poller, lambda: (
            drain() or (left.neighbors["right"].established
                        and "left" in right.neighbors
                        and right.neighbors["left"].established)))
        from repro.bgp.attributes import local_route
        prefix = IPv4Prefix.parse("203.0.113.0/24")
        left.originate(local_route(prefix))
        _pump_until(poller, lambda: (
            drain() or right.best_route(prefix) is not None))
        best = right.best_route(prefix)
        assert best.as_path.segments[0].asns == (65001,)
        channel.close()
        listener.close()
        for neighbor in list(right.neighbors.values()):
            if neighbor.session is not None:
                neighbor.session.channel.close()
    finally:
        poller.close()


def test_socket_leak_accounting():
    baseline = open_socket_count()
    poller = SocketPoller()
    accepted = []
    listener = SocketListener(poller, on_accept=accepted.append)
    client = SocketChannel.connect(poller, "127.0.0.1", listener.port)
    _pump_until(poller, lambda: accepted)
    assert open_socket_count() > baseline
    client.close()
    accepted[0].close()
    listener.close()
    poller.close()
    assert open_socket_count() == baseline
