"""Best-path decision process tests and invariants."""

from hypothesis import given, strategies as st

from repro.bgp.attributes import Origin, originate
from repro.bgp.decision import PeerContext, best_path, compare_routes
from repro.bgp.rib import RibEntry
from repro.netsim.addr import IPv4Address, IPv4Prefix

P = IPv4Prefix.parse("10.0.0.0/8")
NH = IPv4Address.parse("1.1.1.1")


def route(origin_asn=100, prepends=0, local_pref=None, med=None,
          origin=Origin.IGP):
    r = originate(P, origin_asn, NH)
    if prepends:
        r = r.prepended(origin_asn, prepends)
    return r.with_attributes(local_pref=local_pref, med=med, origin=origin)


def test_higher_local_pref_wins():
    assert compare_routes(route(local_pref=200), route(local_pref=100)) < 0
    assert compare_routes(route(local_pref=50), route(local_pref=100)) > 0


def test_default_local_pref_is_100():
    assert compare_routes(route(local_pref=None), route(local_pref=100)) == 0


def test_shorter_as_path_wins():
    assert compare_routes(route(), route(prepends=2)) < 0


def test_local_pref_beats_path_length():
    assert compare_routes(route(prepends=5, local_pref=200), route()) < 0


def test_lower_origin_wins():
    assert compare_routes(route(origin=Origin.IGP),
                          route(origin=Origin.INCOMPLETE)) < 0


def test_med_compared_same_neighbor_as():
    assert compare_routes(route(med=10), route(med=20)) < 0


def test_med_ignored_different_neighbor_as():
    a = route(origin_asn=100, med=99)
    b = originate(P, 200, NH).with_attributes(med=1)
    # Same path length, origin; MED skipped → falls through to eBGP tie.
    assert compare_routes(a, b) == 0


def test_ebgp_preferred_over_ibgp():
    ebgp = PeerContext(is_ebgp=True)
    ibgp = PeerContext(is_ebgp=False)
    assert compare_routes(route(), route(), ebgp, ibgp) < 0
    assert compare_routes(route(), route(), ibgp, ebgp) > 0


def test_lower_router_id_breaks_tie():
    low = PeerContext(router_id=IPv4Address(1))
    high = PeerContext(router_id=IPv4Address(2))
    assert compare_routes(route(), route(), low, high) < 0


def test_lower_peer_address_final_tiebreak():
    low = PeerContext(peer_address=IPv4Address(1))
    high = PeerContext(peer_address=IPv4Address(2))
    assert compare_routes(route(), route(), low, high) < 0


def test_best_path_empty():
    assert best_path([]) is None


def test_best_path_deterministic_on_ties():
    entries = [
        RibEntry(peer="b", route=route()),
        RibEntry(peer="a", route=route()),
    ]
    assert best_path(entries).peer == "a"
    assert best_path(list(reversed(entries))).peer == "a"


local_prefs = st.one_of(st.none(), st.integers(0, 1000))
prepend_counts = st.integers(0, 5)


@given(
    st.lists(
        st.tuples(local_prefs, prepend_counts),
        min_size=1, max_size=8,
    )
)
def test_best_is_undominated(params):
    """The selected route has max local-pref, and among those, the
    shortest AS path."""
    entries = [
        RibEntry(peer=f"p{index}", route=route(local_pref=lp, prepends=pp))
        for index, (lp, pp) in enumerate(params)
    ]
    best = best_path(entries)
    assert best is not None
    effective = [
        (e.route.attributes.local_pref if e.route.attributes.local_pref
         is not None else 100, e.route.as_path.length)
        for e in entries
    ]
    best_pref = max(pref for pref, _ in effective)
    best_entry_pref = (
        best.route.attributes.local_pref
        if best.route.attributes.local_pref is not None else 100
    )
    assert best_entry_pref == best_pref
    shortest = min(
        length for pref, length in effective if pref == best_pref
    )
    assert best.route.as_path.length == shortest


@given(
    st.lists(st.tuples(local_prefs, prepend_counts), min_size=1, max_size=8)
)
def test_selection_order_invariant(params):
    entries = [
        RibEntry(peer=f"p{index}", route=route(local_pref=lp, prepends=pp))
        for index, (lp, pp) in enumerate(params)
    ]
    forward = best_path(entries)
    backward = best_path(list(reversed(entries)))
    assert forward.peer == backward.peer
