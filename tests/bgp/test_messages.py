"""Wire-codec tests for BGP messages, with hypothesis round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import (
    AsPath,
    Community,
    LargeCommunity,
    Origin,
    PathAttributes,
    Route,
    UnknownAttribute,
)
from repro.bgp.errors import NotificationError
from repro.bgp.messages import (
    AddPathCapability,
    FourOctetAsCapability,
    KeepaliveMessage,
    MessageDecoder,
    MultiprotocolCapability,
    NotificationMessage,
    OpenMessage,
    UpdateMessage,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix


def decode_one(data: bytes, addpath: bool = False):
    decoder = MessageDecoder()
    decoder.addpath = addpath
    decoder.feed(data)
    message = decoder.next_message()
    assert decoder.next_message() is None
    return message


class TestOpen:
    def make(self, **kwargs):
        defaults = dict(
            asn=47065,
            hold_time=90,
            bgp_id=IPv4Address.parse("100.64.0.1"),
            capabilities=(
                MultiprotocolCapability(),
                FourOctetAsCapability(asn=47065),
                AddPathCapability(),
            ),
        )
        defaults.update(kwargs)
        return OpenMessage(**defaults)

    def test_roundtrip(self):
        message = self.make()
        decoded = decode_one(message.encode())
        assert decoded == message

    def test_four_octet_asn(self):
        message = self.make(
            asn=263842,
            capabilities=(FourOctetAsCapability(asn=263842),),
        )
        decoded = decode_one(message.encode())
        assert decoded.asn == 263842

    def test_addpath_capability_found(self):
        decoded = decode_one(self.make().encode())
        assert decoded.find_addpath() is not None

    def test_no_addpath(self):
        decoded = decode_one(self.make(capabilities=()).encode())
        assert decoded.find_addpath() is None

    def test_unacceptable_hold_time(self):
        data = self.make(hold_time=2).encode()
        with pytest.raises(NotificationError):
            decode_one(data)


class TestUpdate:
    def attrs(self, **kwargs):
        defaults = dict(
            origin=Origin.IGP,
            as_path=AsPath.from_asns(47065, 3356),
            next_hop=IPv4Address.parse("100.64.0.1"),
        )
        defaults.update(kwargs)
        return PathAttributes(**defaults)

    def test_roundtrip_basic(self):
        update = UpdateMessage(
            attributes=self.attrs(),
            nlri=((IPv4Prefix.parse("184.164.224.0/24"), None),),
        )
        assert decode_one(update.encode()) == update

    def test_roundtrip_all_attributes(self):
        update = UpdateMessage(
            attributes=self.attrs(
                med=50,
                local_pref=200,
                atomic_aggregate=True,
                aggregator=(47065, IPv4Address.parse("1.1.1.1")),
                communities=frozenset({Community(47065, 1),
                                       Community(47065, 2)}),
                large_communities=frozenset({LargeCommunity(47065, 1, 2)}),
            ),
            nlri=((IPv4Prefix.parse("10.0.0.0/8"), None),),
        )
        assert decode_one(update.encode()) == update

    def test_roundtrip_withdraw(self):
        update = UpdateMessage(
            withdrawn=((IPv4Prefix.parse("184.164.224.0/24"), None),),
        )
        assert decode_one(update.encode()) == update

    def test_addpath_path_ids(self):
        update = UpdateMessage(
            attributes=self.attrs(),
            nlri=(
                (IPv4Prefix.parse("10.0.0.0/8"), 1),
                (IPv4Prefix.parse("10.0.0.0/8"), 2),
            ),
        )
        decoded = decode_one(update.encode(addpath=True), addpath=True)
        assert decoded.nlri == update.nlri

    def test_addpath_mismatch_garbles(self):
        """Decoding ADD-PATH NLRI without the capability must error (the
        4-byte path id is read as prefix data)."""
        update = UpdateMessage(
            attributes=self.attrs(),
            nlri=((IPv4Prefix.parse("10.0.0.0/8"), 300),),
        )
        data = update.encode(addpath=True)
        with pytest.raises(NotificationError):
            decode_one(data, addpath=False)

    def test_unknown_transitive_attribute_roundtrip(self):
        unknown = UnknownAttribute(
            type_code=99,
            flags=UnknownAttribute.FLAG_OPTIONAL | UnknownAttribute.FLAG_TRANSITIVE,
            value=b"\xde\xad",
        )
        update = UpdateMessage(
            attributes=self.attrs(unknown=(unknown,)),
            nlri=((IPv4Prefix.parse("10.0.0.0/8"), None),),
        )
        decoded = decode_one(update.encode())
        assert len(decoded.attributes.unknown) == 1
        assert decoded.attributes.unknown[0].type_code == 99

    def test_missing_next_hop_rejected(self):
        update = UpdateMessage(
            attributes=self.attrs(next_hop=None),
            nlri=((IPv4Prefix.parse("10.0.0.0/8"), None),),
        )
        with pytest.raises(NotificationError):
            decode_one(update.encode())

    def test_announce_helper_groups_attributes(self):
        attrs = self.attrs()
        routes = [
            Route(prefix=IPv4Prefix.parse("10.0.0.0/8"), attributes=attrs),
            Route(prefix=IPv4Prefix.parse("11.0.0.0/8"), attributes=attrs),
        ]
        update = UpdateMessage.announce(routes)
        assert len(update.nlri) == 2
        assert update.routes() == routes

    def test_announce_mixed_attributes_rejected(self):
        a = Route(prefix=IPv4Prefix.parse("10.0.0.0/8"),
                  attributes=self.attrs())
        b = Route(prefix=IPv4Prefix.parse("11.0.0.0/8"),
                  attributes=self.attrs(med=99))
        with pytest.raises(ValueError):
            UpdateMessage.announce([a, b])

    def test_malformed_as_path_rejected(self):
        data = UpdateMessage(
            attributes=self.attrs(), nlri=((IPv4Prefix.parse("10.0.0.0/8"),
                                            None),),
        ).encode()
        # Corrupt the AS_PATH segment type byte (scan for attr type 2).
        corrupted = bytearray(data)
        index = corrupted.find(bytes([0x40, 0x02]))
        corrupted[index + 3] = 9  # invalid segment type
        with pytest.raises(NotificationError):
            decode_one(bytes(corrupted))


class TestFraming:
    def test_keepalive_roundtrip(self):
        assert isinstance(decode_one(KeepaliveMessage().encode()),
                          KeepaliveMessage)

    def test_notification_roundtrip(self):
        message = NotificationMessage(code=6, subcode=2, data=b"bye")
        decoded = decode_one(message.encode())
        assert decoded == message

    def test_partial_feed(self):
        decoder = MessageDecoder()
        data = KeepaliveMessage().encode()
        decoder.feed(data[:10])
        assert decoder.next_message() is None
        decoder.feed(data[10:])
        assert isinstance(decoder.next_message(), KeepaliveMessage)

    def test_multiple_messages_in_one_feed(self):
        decoder = MessageDecoder()
        decoder.feed(KeepaliveMessage().encode() * 3)
        messages = list(decoder)
        assert len(messages) == 3

    def test_bad_marker(self):
        decoder = MessageDecoder()
        decoder.feed(b"\x00" * 19)
        with pytest.raises(NotificationError):
            decoder.next_message()

    def test_bad_length(self):
        data = bytearray(KeepaliveMessage().encode())
        data[16:18] = (5).to_bytes(2, "big")
        decoder = MessageDecoder()
        decoder.feed(bytes(data))
        with pytest.raises(NotificationError):
            decoder.next_message()

    def test_bad_type(self):
        data = bytearray(KeepaliveMessage().encode())
        data[18] = 99
        decoder = MessageDecoder()
        decoder.feed(bytes(data))
        with pytest.raises(NotificationError):
            decoder.next_message()


# ---------------------------------------------------------------------------
# Hypothesis round trips
# ---------------------------------------------------------------------------

prefixes = st.builds(
    lambda value, length: IPv4Prefix.from_address(IPv4Address(value), length),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
asns = st.integers(min_value=1, max_value=(1 << 32) - 1)
communities = st.builds(
    Community,
    st.integers(min_value=0, max_value=65535),
    st.integers(min_value=0, max_value=65535),
)


@st.composite
def path_attributes(draw):
    path_asns = draw(st.lists(asns, min_size=0, max_size=8))
    return PathAttributes(
        origin=draw(st.sampled_from(list(Origin))),
        as_path=AsPath.from_asns(*path_asns),
        next_hop=IPv4Address(draw(st.integers(0, (1 << 32) - 1))),
        med=draw(st.one_of(st.none(), st.integers(0, (1 << 32) - 1))),
        local_pref=draw(st.one_of(st.none(),
                                  st.integers(0, (1 << 32) - 1))),
        communities=frozenset(draw(st.lists(communities, max_size=5))),
    )


@settings(max_examples=50, deadline=None)
@given(attrs=path_attributes(),
       nlri=st.lists(prefixes, min_size=1, max_size=8, unique=True))
def test_update_roundtrip_property(attrs, nlri):
    update = UpdateMessage(
        attributes=attrs, nlri=tuple((p, None) for p in nlri)
    )
    decoded = decode_one(update.encode())
    assert decoded.attributes == attrs
    assert set(decoded.nlri) == set(update.nlri)


@settings(max_examples=50, deadline=None)
@given(attrs=path_attributes(),
       nlri=st.lists(st.tuples(prefixes,
                               st.integers(min_value=1, max_value=1 << 31)),
                     min_size=1, max_size=6, unique_by=lambda t: t))
def test_update_addpath_roundtrip_property(attrs, nlri):
    update = UpdateMessage(attributes=attrs, nlri=tuple(nlri))
    decoded = decode_one(update.encode(addpath=True), addpath=True)
    assert set(decoded.nlri) == set(update.nlri)


@settings(max_examples=50, deadline=None)
@given(asn=asns, hold=st.integers(min_value=3, max_value=65535),
       bgp_id=st.integers(0, (1 << 32) - 1))
def test_open_roundtrip_property(asn, hold, bgp_id):
    message = OpenMessage(
        asn=asn, hold_time=hold, bgp_id=IPv4Address(bgp_id),
        capabilities=(FourOctetAsCapability(asn=asn),),
    )
    decoded = decode_one(message.encode())
    assert decoded.asn == asn
    assert decoded.hold_time == hold
