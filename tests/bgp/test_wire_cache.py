"""Encode memoization and attribute interning (perf fast path).

The optimizations must be *invisible*: cached encodes are byte-identical
to uncached ones, and interning only changes object identity, never
values.
"""

from repro import perf
from repro.bgp.attributes import (
    AsPath,
    Community,
    PathAttributes,
    Route,
    intern_as_path,
    intern_attributes,
)
from repro.bgp.messages import MessageDecoder, UpdateMessage
from repro.netsim.addr import IPv4Address, IPv4Prefix


def _sample_attributes(seed: int = 0) -> PathAttributes:
    return PathAttributes(
        as_path=AsPath.from_asns(65000 + seed, 64512, 3356),
        next_hop=IPv4Address.parse("10.0.0.1"),
        med=seed,
        communities=frozenset({Community(47065, seed)}),
    )


def _sample_update(seed: int = 0) -> UpdateMessage:
    routes = [
        Route(
            prefix=IPv4Prefix.parse(f"10.{seed}.{i}.0/24"),
            attributes=_sample_attributes(seed),
            path_id=i + 1,
        )
        for i in range(4)
    ]
    return UpdateMessage.announce(routes)


class TestEncodeMemoization:
    def test_cached_encode_is_byte_identical(self):
        update = _sample_update()
        with perf.flags(encode_memo=False):
            plain_no_ap = _sample_update().encode(addpath=False)
            plain_ap = _sample_update().encode(addpath=True)
        with perf.flags(encode_memo=True):
            assert update.encode(addpath=False) == plain_no_ap
            assert update.encode(addpath=True) == plain_ap

    def test_repeat_encode_returns_cached_object(self):
        with perf.flags(encode_memo=True):
            update = _sample_update()
            first = update.encode(addpath=True)
            assert update.encode(addpath=True) is first
            # Different addpath mode is cached independently.
            other = update.encode(addpath=False)
            assert other != first
            assert update.encode(addpath=False) is other

    def test_memo_disabled_still_correct(self):
        with perf.flags(encode_memo=False):
            update = _sample_update()
            first = update.encode(addpath=True)
            again = update.encode(addpath=True)
            assert first == again

    def test_shared_attributes_roundtrip(self):
        """Two messages with equal attributes decode identically whether
        or not the attribute wire cache is active."""
        update = _sample_update(seed=3)
        wire = update.encode(addpath=True)
        for memo in (True, False):
            with perf.flags(encode_memo=memo):
                decoder = MessageDecoder()
                decoder.addpath = True
                decoder.feed(wire)
                decoded = decoder.next_message()
                assert decoded.attributes == update.attributes
                assert decoded.nlri == update.nlri


class TestInterning:
    def test_intern_attributes_identity(self):
        with perf.flags(intern_attrs=True):
            first = intern_attributes(_sample_attributes(7))
            second = intern_attributes(_sample_attributes(7))
            assert first is second

    def test_intern_as_path_identity(self):
        with perf.flags(intern_attrs=True):
            first = intern_as_path(AsPath.from_asns(1, 2, 3))
            second = intern_as_path(AsPath.from_asns(1, 2, 3))
            assert first is second

    def test_intern_disabled_returns_argument(self):
        with perf.flags(intern_attrs=False):
            attrs = _sample_attributes(9)
            assert intern_attributes(attrs) is attrs
            path = AsPath.from_asns(4, 5)
            assert intern_as_path(path) is path

    def test_decode_pools_equal_attribute_sets(self):
        wire = _sample_update(seed=5).encode(addpath=True)
        with perf.flags(intern_attrs=True):
            decoded = []
            for _ in range(2):
                decoder = MessageDecoder()
                decoder.addpath = True
                decoder.feed(wire)
                decoded.append(decoder.next_message())
            assert decoded[0].attributes is decoded[1].attributes

    def test_interning_never_changes_value(self):
        with perf.flags(intern_attrs=True):
            attrs = _sample_attributes(11)
            assert intern_attributes(attrs) == attrs


class TestFlagHygiene:
    def test_flags_context_restores(self):
        before = perf.FLAGS
        with perf.flags(encode_memo=False, intern_attrs=False):
            assert not perf.FLAGS.encode_memo
            assert not perf.FLAGS.intern_attrs
        assert perf.FLAGS == before

    def test_cache_cleared_on_flag_change(self):
        with perf.flags(encode_memo=True):
            update = _sample_update(seed=13)
            update.encode(addpath=True)
            from repro.bgp import messages

            assert messages._ATTR_WIRE_CACHE
        # Leaving the context clears the module-level caches.
        from repro.bgp import messages

        assert not messages._ATTR_WIRE_CACHE
