"""§6g zero-copy UPDATE encode: byte-identical, bounded, clearable."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.bgp.attributes import AsPath, Origin, PathAttributes
from repro.bgp.errors import NotificationError
from repro.bgp.messages import (
    MAX_MESSAGE_SIZE,
    UpdateMessage,
    _ENCODE_BUFFER,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix

ATTRS = PathAttributes(
    origin=Origin.IGP,
    as_path=AsPath.from_asns(64500, 64501),
    next_hop=IPv4Address.parse("192.0.2.1"),
)


def _prefixes(max_size):
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 32) - 1),
            st.integers(min_value=1, max_value=32),
            st.sampled_from([None, 0, 1, 77]),
        ),
        min_size=0, max_size=max_size,
    ).map(lambda items: tuple(
        (IPv4Prefix(IPv4Address(value & (((1 << length) - 1)
                                         << (32 - length))), length), pid)
        for value, length, pid in items
    ))


@given(nlri=_prefixes(12), withdrawn=_prefixes(12),
       addpath=st.booleans(), memo=st.booleans())
@settings(max_examples=120, deadline=None)
def test_zero_copy_matches_reference_encoder(nlri, withdrawn, addpath, memo):
    message = UpdateMessage(
        attributes=ATTRS if nlri else None, nlri=nlri, withdrawn=withdrawn,
    )
    with perf.flags(encode_zero_copy=False, encode_memo=False):
        reference = message.encode(addpath)
    for zero_memo in (False, True):
        fresh = UpdateMessage(
            attributes=ATTRS if nlri else None, nlri=nlri,
            withdrawn=withdrawn,
        )
        with perf.flags(encode_zero_copy=True, encode_memo=zero_memo):
            assert fresh.encode(addpath) == reference
    assert UpdateMessage.decode(reference[19:], addpath) is not None


def test_end_of_rib_identical():
    with perf.flags(encode_zero_copy=False):
        reference = UpdateMessage.end_of_rib().encode()
    with perf.flags(encode_zero_copy=True):
        assert UpdateMessage.end_of_rib().encode() == reference


def test_snapshots_survive_buffer_reuse():
    """The escaping bytes are immutable snapshots: a later encode into
    the shared buffer must not corrupt an earlier result."""
    p1 = IPv4Prefix.parse("198.51.100.0/24")
    p2 = IPv4Prefix.parse("203.0.113.0/24")
    with perf.flags(encode_zero_copy=True, encode_memo=False):
        first = UpdateMessage(attributes=ATTRS,
                              nlri=((p1, None),)).encode()
        copy = bytes(first)
        second = UpdateMessage(attributes=ATTRS,
                               nlri=((p2, None), (p1, None))).encode()
    assert first == copy
    assert first != second


def test_oversize_message_raises_in_both_modes():
    nlri = tuple(
        (IPv4Prefix(IPv4Address((10 << 24) + (i << 8)), 24), None)
        for i in range(1400)
    )
    message = UpdateMessage(attributes=ATTRS, nlri=nlri)
    for zero in (False, True):
        fresh = UpdateMessage(attributes=ATTRS, nlri=nlri)
        with perf.flags(encode_zero_copy=zero, encode_memo=False):
            with pytest.raises(NotificationError):
                fresh.encode()


def test_encode_buffer_registered_with_cache_clearers():
    with perf.flags(encode_zero_copy=True):
        UpdateMessage(
            attributes=ATTRS,
            nlri=((IPv4Prefix.parse("198.51.100.0/24"), None),),
        ).encode()
        # Retains the last encode until the next reset…
        assert len(_ENCODE_BUFFER) > 0
        # …and clear_caches() (also run on every perf.flags() exit)
        # empties it.
        perf.clear_caches()
        assert len(_ENCODE_BUFFER) == 0
        wire = UpdateMessage.end_of_rib().encode()
        assert len(wire) <= MAX_MESSAGE_SIZE
    assert len(_ENCODE_BUFFER) == 0  # flags-exit clears it too
