"""Session FSM edge cases fixed alongside the resilience work.

Satellites of the resilience PR: RFC 4271 hold-time negotiation with a
zero offer, shutdown from IDLE (transport must not leak), and decoder
behaviour when buffered bytes trail a fatal NOTIFICATION.
"""

from repro.bgp.errors import ErrorCode
from repro.bgp.messages import KeepaliveMessage, NotificationMessage
from repro.bgp.session import BgpSession, SessionConfig, SessionState
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address

from tests.bgp.test_session import make_pair, sample_update


def test_hold_time_negotiates_to_minimum(scheduler):
    a, b, *_ = make_pair(scheduler, hold_a=30, hold_b=90)
    scheduler.run_for(1)
    assert a.negotiated_hold_time == 30
    assert b.negotiated_hold_time == 30


def test_hold_time_zero_disables_timers(scheduler):
    """RFC 4271 §4.2: a negotiated hold time of 0 disables the hold and
    keepalive timers — it must not fall back to the local default."""
    a, b, *_ = make_pair(scheduler, hold_a=0, hold_b=90)
    scheduler.run_for(1)
    assert a.negotiated_hold_time == 0
    assert b.negotiated_hold_time == 0
    keepalives_before = a.stats.keepalives_sent
    # A long silence would kill a mis-negotiated session (hold timer) or
    # generate keepalives (keepalive timer); with 0 neither may happen.
    scheduler.run_for(1000)
    assert a.state == SessionState.ESTABLISHED
    assert b.state == SessionState.ESTABLISHED
    assert a.stats.keepalives_sent == keepalives_before
    # The session still carries updates.
    b.send_update(sample_update())
    scheduler.run_for(1)
    assert a.state == SessionState.ESTABLISHED


def test_shutdown_from_idle_closes_transport_and_notifies(scheduler):
    closed = []
    channel_a, channel_b = connect_pair(scheduler, rtt=0.01)
    session = BgpSession(
        scheduler,
        SessionConfig(local_asn=65001,
                      local_id=IPv4Address.parse("1.1.1.1"),
                      peer_asn=None),
        channel_a,
        on_update=lambda s, u: None,
        on_close=lambda s, reason: closed.append(reason),
    )
    assert session.state == SessionState.IDLE
    session.shutdown()
    assert session.state == SessionState.CLOSED
    assert channel_a.closed  # no leaked transport
    assert closed  # the owner heard about it
    assert session.closed_admin
    # Idempotent: a second shutdown is a no-op.
    session.shutdown()
    assert len(closed) == 1


def test_bytes_after_notification_are_not_dispatched(scheduler):
    """A NOTIFICATION is fatal: any bytes buffered behind it in the same
    delivery must not be dispatched on the now-closed session."""
    a, b, updates_a, updates_b, closed = make_pair(scheduler)
    scheduler.run_for(1)
    assert a.state == SessionState.ESTABLISHED
    keepalives_before = a.stats.keepalives_received
    updates_before = a.stats.updates_received
    payload = (
        NotificationMessage(code=ErrorCode.CEASE).encode()
        + KeepaliveMessage().encode()
        + sample_update().encode(addpath=a.addpath_active)
    )
    a.channel._deliver(payload)
    assert a.state == SessionState.CLOSED
    assert a.stats.keepalives_received == keepalives_before
    assert a.stats.updates_received == updates_before
    assert not updates_a
    scheduler.run_for(1)  # nothing queued blows up later either
    assert a.state == SessionState.CLOSED
