"""Session FSM tests: establishment, ADD-PATH, timers, error handling."""

import pytest

from repro.bgp.errors import NotificationError
from repro.bgp.messages import UpdateMessage
from repro.bgp.attributes import PathAttributes, AsPath, Origin
from repro.bgp.session import BgpSession, SessionConfig, SessionState
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix


def make_pair(scheduler, addpath_a=True, addpath_b=True, peer_asn_b=65001,
              hold_a=90, hold_b=90):
    updates_a, updates_b = [], []
    closed = []
    channel_a, channel_b = connect_pair(scheduler, rtt=0.02)
    session_a = BgpSession(
        scheduler,
        SessionConfig(local_asn=65001,
                      local_id=IPv4Address.parse("1.1.1.1"),
                      peer_asn=65002, addpath=addpath_a, hold_time=hold_a),
        channel_a,
        on_update=lambda s, u: updates_a.append(u),
        on_close=lambda s, reason: closed.append(("a", reason)),
    )
    session_b = BgpSession(
        scheduler,
        SessionConfig(local_asn=65002,
                      local_id=IPv4Address.parse("2.2.2.2"),
                      peer_asn=peer_asn_b, addpath=addpath_b,
                      hold_time=hold_b),
        channel_b,
        on_update=lambda s, u: updates_b.append(u),
        on_close=lambda s, reason: closed.append(("b", reason)),
    )
    session_a.start()
    session_b.start()
    return session_a, session_b, updates_a, updates_b, closed


def sample_update():
    return UpdateMessage(
        attributes=PathAttributes(
            origin=Origin.IGP,
            as_path=AsPath.from_asns(65001),
            next_hop=IPv4Address.parse("10.0.0.1"),
        ),
        nlri=((IPv4Prefix.parse("10.0.0.0/8"), None),),
    )


def test_establishment(scheduler):
    a, b, *_ = make_pair(scheduler)
    scheduler.run_for(1)
    assert a.state == SessionState.ESTABLISHED
    assert b.state == SessionState.ESTABLISHED
    assert a.peer_asn == 65002


def test_addpath_negotiated_when_both_offer(scheduler):
    a, b, *_ = make_pair(scheduler)
    scheduler.run_for(1)
    assert a.addpath_active and b.addpath_active


def test_addpath_not_negotiated_one_sided(scheduler):
    a, b, *_ = make_pair(scheduler, addpath_b=False)
    scheduler.run_for(1)
    assert not a.addpath_active and not b.addpath_active


def test_update_delivery(scheduler):
    a, b, updates_a, updates_b, _ = make_pair(scheduler)
    scheduler.run_for(1)
    a.send_update(sample_update())
    scheduler.run_for(1)
    assert len(updates_b) == 1
    assert updates_b[0].nlri[0][0] == IPv4Prefix.parse("10.0.0.0/8")


def test_update_before_established_raises(scheduler):
    a, _b, *_ = make_pair(scheduler)
    with pytest.raises(NotificationError):
        a.send_update(sample_update())


def test_bad_peer_asn_sends_notification(scheduler):
    a, b, _ua, _ub, closed = make_pair(scheduler, peer_asn_b=64999)
    scheduler.run_for(1)
    assert b.state == SessionState.CLOSED
    assert a.state == SessionState.CLOSED
    assert any("NOTIFICATION" in reason for _s, reason in closed)


def test_hold_timer_negotiated_to_minimum(scheduler):
    a, b, *_ = make_pair(scheduler, hold_a=90, hold_b=30)
    scheduler.run_for(1)
    assert a.negotiated_hold_time == 30
    assert b.negotiated_hold_time == 30


def test_keepalives_maintain_session(scheduler):
    a, b, *_ = make_pair(scheduler, hold_a=9, hold_b=9)
    scheduler.run_for(120)
    assert a.state == SessionState.ESTABLISHED
    assert b.state == SessionState.ESTABLISHED
    assert a.stats.keepalives_sent > 10


def test_hold_timer_expires_without_peer(scheduler):
    channel_a, _channel_b = connect_pair(scheduler, rtt=0.02)
    closed = []
    session = BgpSession(
        scheduler,
        SessionConfig(local_asn=65001,
                      local_id=IPv4Address.parse("1.1.1.1"),
                      peer_asn=65002, hold_time=9),
        channel_a,
        on_update=lambda s, u: None,
        on_close=lambda s, reason: closed.append(reason),
    )
    session.start()
    scheduler.run_for(20)
    assert session.state == SessionState.CLOSED
    assert closed and "NOTIFICATION" in closed[0]


def test_shutdown_notifies_peer(scheduler):
    a, b, _ua, _ub, closed = make_pair(scheduler)
    scheduler.run_for(1)
    a.shutdown()
    scheduler.run_for(1)
    assert a.state == SessionState.CLOSED
    assert b.state == SessionState.CLOSED
    assert b.stats.notifications_received == 1


def test_garbage_bytes_reset_session(scheduler):
    """Malformed input triggers NOTIFICATION + teardown — the §7.3
    failure mode (a compliant announcement resetting sessions)."""
    a, b, *_ = make_pair(scheduler)
    scheduler.run_for(1)
    a.channel.send(b"\x00" * 19)
    scheduler.run_for(1)
    assert b.state == SessionState.CLOSED
    assert b.stats.notifications_sent == 1


def test_stats_counters(scheduler):
    a, b, _ua, updates_b, _ = make_pair(scheduler)
    scheduler.run_for(1)
    a.send_update(sample_update())
    scheduler.run_for(1)
    assert a.stats.updates_sent == 1
    assert b.stats.updates_received == 1


def test_channel_close_tears_down(scheduler):
    a, b, _ua, _ub, closed = make_pair(scheduler)
    scheduler.run_for(1)
    a.channel.close()
    scheduler.run_for(1)
    assert b.state == SessionState.CLOSED
