"""RFC 4724 Graceful Restart: capability, End-of-RIB, retention, flush."""

from repro.bgp.attributes import local_route
from repro.bgp.messages import (
    GracefulRestartCapability,
    MessageDecoder,
    OpenMessage,
    UpdateMessage,
)
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.bgp.supervisor import SupervisorConfig
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.telemetry import TelemetryHub
from repro.toolkit import ExperimentClient

DEST = IPv4Prefix.parse("198.51.100.0/24")


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------

def test_gr_capability_roundtrip():
    capability = GracefulRestartCapability(
        restart_time=240, restarted=True, forwarding=True
    )
    message = OpenMessage(
        asn=65001,
        hold_time=90,
        bgp_id=IPv4Address.parse("1.1.1.1"),
        capabilities=(capability,),
    )
    decoder = MessageDecoder()
    decoder.feed(message.encode())
    decoded = list(decoder)
    assert len(decoded) == 1
    parsed = decoded[0].find_graceful_restart()
    assert parsed is not None
    assert parsed.restart_time == 240
    assert parsed.restarted is True
    assert parsed.forwarding is True


def test_end_of_rib_is_an_empty_update():
    eor = UpdateMessage.end_of_rib()
    assert eor.is_end_of_rib
    decoder = MessageDecoder()
    decoder.feed(eor.encode())
    decoded = list(decoder)
    assert len(decoded) == 1
    assert decoded[0].is_end_of_rib
    # A real update is not EoR.
    assert not UpdateMessage.announce(
        [local_route(DEST, next_hop=IPv4Address.parse("10.0.0.1"))]
    ).is_end_of_rib


# ----------------------------------------------------------------------
# Speaker-level semantics
# ----------------------------------------------------------------------

def gr_pair(scheduler, restart_time_b=60, supervised=True):
    a = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65001, router_id=IPv4Address.parse("1.1.1.1")))
    b = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65002, router_id=IPv4Address.parse("2.2.2.2")))
    channel_a, channel_b = connect_pair(scheduler, rtt=0.02)
    b.attach_neighbor(
        NeighborConfig(name="a", graceful_restart=True,
                       restart_time=restart_time_b),
        channel_b,
    )

    channel_factory = None
    if supervised:
        def channel_factory():
            new_a, new_b = connect_pair(scheduler, rtt=0.02)
            b.reattach_neighbor("a", new_b)
            return new_a

    a.attach_neighbor(
        NeighborConfig(name="b", graceful_restart=True, restart_time=60),
        channel_a,
        channel_factory=channel_factory,
        supervisor_config=SupervisorConfig(min_backoff=0.5, seed=5),
    )
    b.originate(local_route(DEST, next_hop=IPv4Address.parse("2.2.2.2")))
    scheduler.run_for(2)
    assert a.neighbors["b"].session.gr_negotiated
    assert a.best_route(DEST) is not None
    return a, b


def test_gr_negotiation_requires_both_sides(scheduler):
    a = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65001, router_id=IPv4Address.parse("1.1.1.1")))
    b = BgpSpeaker(scheduler, SpeakerConfig(
        asn=65002, router_id=IPv4Address.parse("2.2.2.2")))
    channel_a, channel_b = connect_pair(scheduler, rtt=0.02)
    a.attach_neighbor(
        NeighborConfig(name="b", graceful_restart=True), channel_a
    )
    b.attach_neighbor(NeighborConfig(name="a"), channel_b)  # no GR
    scheduler.run_for(2)
    assert a.neighbors["b"].established
    assert not a.neighbors["b"].session.gr_negotiated
    assert not b.neighbors["a"].session.gr_negotiated


def test_gr_retains_routes_across_reset(scheduler):
    a, b = gr_pair(scheduler)
    # Non-administrative loss of the transport.
    b.neighbors["a"].session.channel.close()
    scheduler.run_for(0.2)
    # Stale but retained: the best route survives the reset window.
    assert a.neighbors["b"].stale_keys
    assert a.best_route(DEST) is not None
    # The supervisor re-dials; the refreshed RIB's End-of-RIB flushes
    # the stale marks and the route is still there.
    scheduler.run_for(5)
    assert a.neighbors["b"].established
    assert not a.neighbors["b"].stale_keys
    assert a.best_route(DEST) is not None


def test_gr_admin_shutdown_still_withdraws(scheduler):
    a, b = gr_pair(scheduler, supervised=False)
    a.neighbors["b"].session.shutdown()  # deliberate teardown
    scheduler.run_for(1)
    assert not a.neighbors["b"].stale_keys
    assert a.best_route(DEST) is None


def test_gr_stale_flushed_at_restart_timer_expiry(scheduler):
    a, b = gr_pair(scheduler, restart_time_b=5, supervised=False)
    b.neighbors["a"].session.channel.close()
    scheduler.run_for(0.2)
    assert a.best_route(DEST) is not None  # retained …
    scheduler.run_for(6)
    # … but the peer never came back: fail closed at timer expiry.
    assert not a.neighbors["b"].stale_keys
    assert a.best_route(DEST) is None


# ----------------------------------------------------------------------
# Platform-level: the §7.3 withdraw-storm elimination
# ----------------------------------------------------------------------

def build_gr_world(scheduler, resilient=True, restart_time=60):
    hub = TelemetryHub(scheduler)
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[PopConfig(name="p0", pop_id=0, kind="ixp")],
        telemetry=hub,
    )
    pop = platform.pops["p0"]
    port = pop.provision_neighbor(
        "n1", 65010, kind="transit",
        resilient=resilient,
        graceful_restart=True,
        restart_time=restart_time,
        supervisor_config=SupervisorConfig(min_backoff=0.5, seed=9),
    )
    neighbor = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65010, router_id=port.address)
    )
    neighbor.attach_neighbor(
        NeighborConfig(
            name="to-pop", peer_asn=None, local_address=port.address,
            graceful_restart=True, restart_time=restart_time,
        ),
        port.channel,
    )
    port.on_redial = (
        lambda channel, s=neighbor: s.reattach_neighbor("to-pop", channel)
    )
    neighbor.originate(local_route(DEST, next_hop=port.address))
    platform.submit_proposal(ExperimentProposal(
        name="exp", contact="t", goals="g", execution_plan="p",
    ))
    client = ExperimentClient(scheduler, "exp", platform)
    client.openvpn_up("p0")
    client.bird_start("p0")
    scheduler.run_for(10)
    assert client.routes(DEST, "p0")
    return platform, pop, port, neighbor, client, hub


def client_withdrawals_since(hub, since):
    """Withdrawals the experiment's BIRD saw, via the station feed."""
    return [
        message for message in hub.station.history
        if message.kind == "route-monitoring"
        and message.peer.startswith("client:")
        and message.time >= since
        and message.withdrawn
    ]


def test_upstream_reset_with_gr_sends_zero_withdrawals(scheduler):
    platform, pop, port, neighbor, client, hub = build_gr_world(scheduler)
    fault_time = scheduler.now
    port.channel.close()  # upstream transport dies (non-admin)
    scheduler.run_for(0.2)
    # Retained: the experiment still sees the route mid-outage …
    assert client.routes(DEST, "p0")
    upstream = pop.node.upstreams["n1"]
    assert upstream.stale_keys
    scheduler.run_for(30)
    # … the supervisor re-dialed within the restart window, End-of-RIB
    # flushed the stale marks, and not one withdrawal reached the
    # experiment (asserted against the BMP-style station feed).
    assert upstream.session.established
    assert not upstream.stale_keys
    assert client.routes(DEST, "p0")
    assert client_withdrawals_since(hub, fault_time) == []
    assert pop.node.counters["gr_routes_retained"] >= 1
    # The per-neighbor kernel table kept the route throughout.
    table = pop.stack.tables[upstream.virtual.table_id]
    assert len(table) == 1


def test_upstream_reset_without_return_flushes_at_expiry(scheduler):
    platform, pop, port, neighbor, client, hub = build_gr_world(
        scheduler, resilient=False, restart_time=5
    )
    fault_time = scheduler.now
    port.channel.close()
    scheduler.run_for(0.2)
    assert client.routes(DEST, "p0")  # retained at first
    scheduler.run_for(10)
    # Peer never returned: fail closed at restart-timer expiry.
    assert client.routes(DEST, "p0") == []
    assert client_withdrawals_since(hub, fault_time)
    upstream = pop.node.upstreams["n1"]
    assert len(pop.stack.tables[upstream.virtual.table_id]) == 0
    assert pop.node.counters["gr_routes_flushed"] >= 1
    events = [
        message.event for message in hub.station.history
        if message.kind == "resilience" and message.peer == "n1"
    ]
    assert "gr-stale" in events
    assert "gr-flush-expired" in events
