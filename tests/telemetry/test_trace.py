"""Tracer tests: ring-buffer eviction, span nesting, formatting."""

from __future__ import annotations

import pytest

from repro.sim import Scheduler
from repro.telemetry import Tracer


def make_tracer(capacity: int = 4):
    clock = {"now": 0.0}
    tracer = Tracer(clock=lambda: clock["now"], capacity=capacity)
    return tracer, clock


def test_ring_buffer_evicts_oldest_and_counts_drops():
    tracer, clock = make_tracer(capacity=4)
    for index in range(10):
        clock["now"] = float(index)
        tracer.event(f"e{index}")
    assert len(tracer) == 4
    assert tracer.recorded == 10
    assert tracer.dropped == 6
    # Oldest events evicted, newest retained, in order.
    assert [event.name for event in tracer.events] == ["e6", "e7", "e8", "e9"]
    assert [event.time for event in tracer.tail(2)] == [8.0, 9.0]


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        Tracer(clock=lambda: 0.0, capacity=0)


def test_span_nesting_parents_and_duration():
    tracer, clock = make_tracer(capacity=64)
    outer = tracer.begin("outer", node="n1")
    assert tracer.depth() == 1
    clock["now"] = 1.0
    inner = tracer.begin("inner")
    tracer.event("leaf")
    clock["now"] = 1.5
    assert tracer.end(inner) == 0.5
    clock["now"] = 2.0
    assert tracer.end(outer) == 2.0
    assert tracer.depth() == 0

    events = list(tracer.events)
    kinds = [event.kind for event in events]
    assert kinds == [
        "span-start", "span-start", "event", "span-end", "span-end",
    ]
    outer_start, inner_start, leaf, inner_end, outer_end = events
    assert inner_start.parent_id == outer_start.span_id
    assert leaf.parent_id == inner_start.span_id
    assert inner_end.span_id == inner_start.span_id
    assert outer_end.duration == 2.0


def test_span_contextmanager_closes_on_exception():
    tracer, _clock = make_tracer(capacity=16)
    with pytest.raises(RuntimeError):
        with tracer.span("risky"):
            raise RuntimeError("boom")
    assert tracer.depth() == 0
    assert [event.kind for event in tracer.events] == [
        "span-start", "span-end",
    ]


def test_out_of_order_end_unwinds_stack():
    tracer, _clock = make_tracer(capacity=16)
    outer = tracer.begin("outer")
    tracer.begin("inner-left-open")
    tracer.end(outer)  # teardown racing an open child span
    assert tracer.depth() == 0


def test_clock_is_simulation_time():
    scheduler = Scheduler()
    tracer = Tracer(clock=lambda: scheduler.now, capacity=8)
    scheduler.call_later(2.5, lambda: tracer.event("fired"))
    scheduler.run_for(5)
    assert tracer.events[0].time == 2.5
    assert "fired" in tracer.events[0].format()
