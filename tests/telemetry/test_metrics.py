"""Metrics registry + exporter tests, including golden exposition output."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    json_text,
    prometheus_text,
    registry_to_dict,
)


def build_small_registry() -> MetricsRegistry:
    registry = MetricsRegistry(namespace="repro")
    updates = registry.counter(
        "bgp_session_updates", "UPDATE messages", labels=("peer", "direction")
    )
    updates.labels("ams", "in").inc(3)
    updates.labels("ams", "out").inc()
    depth = registry.gauge("queue_depth", "Pending work", labels=("node",))
    depth.labels("ams").set(7)
    latency = registry.histogram(
        "update_latency", "Per-update latency", labels=("node",),
        buckets=(0.001, 0.01, 0.1),
    )
    child = latency.labels("ams")
    child.observe(0.0005)
    child.observe(0.02)
    child.observe(5.0)
    return registry


GOLDEN_PROMETHEUS = """\
# HELP repro_bgp_session_updates UPDATE messages
# TYPE repro_bgp_session_updates counter
repro_bgp_session_updates_total{peer="ams",direction="in"} 3
repro_bgp_session_updates_total{peer="ams",direction="out"} 1
# HELP repro_queue_depth Pending work
# TYPE repro_queue_depth gauge
repro_queue_depth{node="ams"} 7
# HELP repro_update_latency Per-update latency
# TYPE repro_update_latency histogram
repro_update_latency_bucket{node="ams",le="0.001"} 1
repro_update_latency_bucket{node="ams",le="0.01"} 1
repro_update_latency_bucket{node="ams",le="0.1"} 2
repro_update_latency_bucket{node="ams",le="+Inf"} 3
repro_update_latency_sum{node="ams"} 5.0205
repro_update_latency_count{node="ams"} 3
"""


def test_prometheus_golden_output():
    assert prometheus_text(build_small_registry()) == GOLDEN_PROMETHEUS


def test_json_export_round_trips_and_is_stable():
    registry = build_small_registry()
    first = json_text(registry)
    payload = json.loads(first)
    assert payload["namespace"] == "repro"
    names = [family["name"] for family in payload["families"]]
    assert names == sorted(names)
    by_name = {family["name"]: family for family in payload["families"]}
    counter = by_name["bgp_session_updates"]
    assert counter["type"] == "counter"
    assert counter["samples"][0] == {
        "labels": {"peer": "ams", "direction": "in"}, "value": 3.0,
    }
    histogram = by_name["update_latency"]
    assert histogram["samples"][0]["count"] == 3
    assert histogram["samples"][0]["buckets"][-1]["le"] == "+Inf"
    # Deterministic: a second render is byte-identical.
    assert json_text(registry) == first
    assert registry_to_dict(registry) == json.loads(first)


def test_families_are_idempotent_but_typed():
    registry = MetricsRegistry()
    family = registry.counter("x", "help", labels=("a",))
    assert registry.counter("x", "other help", labels=("a",)) is family
    with pytest.raises(ValueError):
        registry.gauge("x", labels=("a",))
    with pytest.raises(ValueError):
        registry.counter("x", labels=("a", "b"))


def test_children_are_interned_and_counters_monotonic():
    registry = MetricsRegistry()
    family = registry.counter("hits", labels=("pop",))
    child = family.labels("ams")
    assert family.labels("ams") is child
    assert family.labels(pop="ams") is child
    child.inc(2)
    assert family.total() == 2
    with pytest.raises(ValueError):
        child.inc(-1)


def test_function_gauge_evaluates_at_collection_time():
    registry = MetricsRegistry()
    gauge = registry.gauge("rib_size", labels=("speaker",))
    backing = {"n": 0}
    gauge.labels("s1").set_function(lambda: backing["n"])
    backing["n"] = 41
    assert 'rib_size{speaker="s1"} 41' in prometheus_text(registry)
    backing["n"] = 42
    assert 'rib_size{speaker="s1"} 42' in prometheus_text(registry)


def test_histogram_quantiles_from_buckets():
    registry = MetricsRegistry()
    family = registry.histogram("lat", buckets=(1.0, 2.0, 4.0))
    child = family.labels()
    for value in (0.5, 0.6, 1.5, 3.0):
        child.observe(value)
    assert child.quantile(0.5) == 1.0
    assert child.quantile(1.0) == 4.0
    assert child.count == 4
