"""BMP monitoring-station tests: mirrors, fan-out, lifecycle ordering."""

from __future__ import annotations

from repro.bgp.attributes import local_route
from repro.bgp.messages import UpdateMessage
from repro.bgp.session import BgpSession, SessionConfig
from repro.bgp.transport import connect_pair
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.sim import Scheduler
from repro.telemetry import (
    MonitoringStation,
    PeerDown,
    PeerUp,
    RouteMonitoring,
    StatsReport,
    TelemetryHub,
)

PREFIX = IPv4Prefix.parse("184.164.224.0/24")
NH = IPv4Address.parse("10.0.0.2")


def test_station_mirrors_follow_route_monitoring():
    station = MonitoringStation()
    route = local_route(PREFIX, next_hop=NH)
    station.publish(PeerUp(peer="p1", time=0.0, local_asn=1, peer_asn=2))
    station.publish(RouteMonitoring(peer="p1", time=1.0,
                                    announced=(route,), withdrawn=()))
    assert station.rib_in_size("p1") == 1
    assert station.routes_for(PREFIX) == [("p1", route)]
    station.publish(RouteMonitoring(
        peer="p1", time=2.0, announced=(),
        withdrawn=((PREFIX, route.path_id),),
    ))
    assert station.rib_in_size("p1") == 0
    # History survives mirror changes.
    assert len(station.messages_for("p1")) == 3


def test_peer_down_flushes_mirror_and_updates_record():
    station = MonitoringStation()
    route = local_route(PREFIX, next_hop=NH)
    station.publish(PeerUp(peer="p1", time=0.0))
    station.publish(RouteMonitoring(peer="p1", time=0.5, announced=(route,)))
    station.publish(StatsReport(peer="p1", time=0.9,
                                stats=(("updates_received", 1),)))
    station.publish(PeerDown(peer="p1", time=1.0, reason="shutdown"))
    assert station.rib_in("p1") == []
    record = station.peers["p1"]
    assert (record.ups, record.downs, record.state) == (1, 1, "down")
    assert record.last_reason == "shutdown"
    assert record.last_stats["updates_received"] == 1
    assert station.up_peers() == []


def test_subscriber_errors_are_contained():
    station = MonitoringStation()
    seen = []

    def broken(_message):
        raise RuntimeError("subscriber bug")

    station.subscribe(broken)
    station.subscribe(seen.append)
    station.publish(PeerUp(peer="p1", time=0.0))
    assert station.subscriber_errors == 1
    assert len(seen) == 1  # later subscribers still get the message
    station.unsubscribe(broken)
    station.publish(PeerDown(peer="p1", time=1.0))
    assert station.subscriber_errors == 1


def test_session_lifecycle_ordering_at_station():
    """PeerUp -> RouteMonitoring -> StatsReport -> PeerDown, in order,
    from a real simulated BGP session pair."""
    scheduler = Scheduler()
    hub = TelemetryHub(scheduler)
    ours, theirs = connect_pair(scheduler, rtt=0.01)
    monitored = BgpSession(
        scheduler,
        SessionConfig(local_asn=47065,
                      local_id=IPv4Address.parse("10.0.0.1"),
                      peer_asn=65010, description="as65010"),
        ours,
        on_update=lambda _s, _u: None,
        telemetry=hub,
    )
    peer = BgpSession(
        scheduler,
        SessionConfig(local_asn=65010,
                      local_id=IPv4Address.parse("10.0.0.2"),
                      peer_asn=47065),
        theirs,
        on_update=lambda _s, _u: None,
    )
    monitored.start()
    peer.start()
    scheduler.run_for(2)
    assert monitored.established

    route = local_route(PREFIX, next_hop=NH)
    peer.send_update(UpdateMessage.announce([route]))
    scheduler.run_for(2)
    assert hub.station.rib_in_size("as65010") == 1

    peer.shutdown()
    scheduler.run_for(2)

    kinds = [m.kind for m in hub.station.messages_for("as65010")]
    assert kinds[0] == "peer-up"
    assert "route-monitoring" in kinds
    assert kinds[-2:] == ["stats-report", "peer-down"]
    assert kinds.index("peer-up") < kinds.index("route-monitoring") < (
        kinds.index("peer-down")
    )
    # The mirror was flushed on PeerDown (RFC 7854 semantics).
    assert hub.station.rib_in("as65010") == []
    stats = hub.station.peers["as65010"].last_stats
    assert stats.get("updates_received", 0) >= 1
