"""Telemetry overhead guard: the disabled path must stay on the fast path.

Replays the §6 AMS-IX churn harness (the ``bench_update_load`` pipeline)
through a telemetry-less PoP and checks throughput against the recorded
``BENCH_update_load.json`` baseline.  The bound is deliberately loose —
CI machines differ from the machine that recorded the baseline — but it
catches the failure mode that matters: accidentally making the
hot path pay for instrumentation when no hub is attached.
"""

from __future__ import annotations

import json
import pathlib

from repro.bgp.session import BgpSession, SessionConfig
from repro.bgp.transport import connect_pair
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.metrics import measure_processing
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.telemetry import TelemetryHub
from repro.vbgp.allocator import GlobalNeighborRegistry

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO_ROOT / "BENCH_update_load.json"

# Loose machine-to-machine tolerance; the benchmark suite owns the tight
# (<5%) comparison on pinned hardware.
RELATIVE_FLOOR = 0.5
ABSOLUTE_FLOOR = 1000.0  # "thousands of updates per second" (§6)


def build_pop(with_telemetry: bool = False):
    scheduler = Scheduler()
    telemetry = TelemetryHub(scheduler) if with_telemetry else None
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="ams", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
        telemetry=telemetry,
    )
    pop.provision_neighbor("upstream", 65010, kind="peer")
    ours, theirs = connect_pair(scheduler, rtt=0.001)
    pop.node.attach_experiment(
        name="x", asn=47065,
        prefixes=(IPv4Prefix.parse("184.164.224.0/24"),),
        tunnel_ip=IPv4Address.parse("100.125.0.2"),
        tunnel_mac=MacAddress.parse("02:aa:00:00:00:02"),
        channel=ours,
    )
    client = BgpSession(
        scheduler,
        SessionConfig(local_asn=47065,
                      local_id=IPv4Address.parse("100.125.0.2"),
                      peer_asn=47065, addpath=True),
        theirs, on_update=lambda _s, _u: None,
    )
    client.start()
    scheduler.run_for(5)
    return scheduler, pop, telemetry


def measure_rate(with_telemetry: bool = False, n_updates: int = 1500):
    scheduler, pop, hub = build_pop(with_telemetry)
    generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=2000, seed=7)
    updates = generator.make_updates(n_updates)

    def process(update):
        pop.node._upstream_update("upstream", update)
        scheduler.run_until(scheduler.now)

    rate = measure_processing(
        "overhead-check", process, updates
    ).max_sustainable_rate()
    return rate, hub


def test_disabled_telemetry_keeps_fast_path_throughput():
    rate, _hub = measure_rate(with_telemetry=False)
    assert rate > ABSOLUTE_FLOOR
    if BASELINE.exists():
        recorded = json.loads(BASELINE.read_text())
        baseline = recorded["metrics"]["max_sustainable_updates_per_s"]
        assert rate >= RELATIVE_FLOOR * baseline, (
            f"telemetry-disabled pipeline at {rate:,.0f}/s fell below "
            f"{RELATIVE_FLOOR:.0%} of the recorded {baseline:,.0f}/s"
        )


def test_enabled_telemetry_overhead_is_bounded():
    """With a hub attached the pipeline still sustains the p99 workload."""
    enabled, hub = measure_rate(with_telemetry=True)
    assert enabled > ABSOLUTE_FLOOR  # still "thousands per second"
    # And it observed the load: the pipeline mirror gauge reflects every
    # injected update (the harness bypasses the session framing layer).
    pipeline = hub.registry.gauge(
        "vbgp_pipeline_counters", labels=("node", "counter")
    )
    assert pipeline.labels("ams", "updates_from_upstream").value >= 1000
    # Tracer captured pipeline spans, bounded by its ring buffer.
    assert any(
        event.name == "vbgp.upstream_update" for event in hub.tracer.events
    )
    assert len(hub.tracer) <= hub.tracer.capacity
