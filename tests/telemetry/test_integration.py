"""End-to-end telemetry: a full platform lifecycle observed at the station.

The acceptance criterion for the subsystem: build a platform around one
:class:`TelemetryHub`, run an experiment through connect → announce →
disconnect, and verify the BMP station saw the whole session lifecycle,
the registry accumulated datapath counters, and the CLI can render it all.
"""

from __future__ import annotations

from repro.netsim.addr import IPv4Prefix
from repro.platform import PeeringPlatform, PopConfig
from repro.sim import Scheduler
from repro.telemetry import TelemetryHub
from repro.toolkit import ExperimentClient
from repro.toolkit.cli import ToolkitCli
from tests.conftest import approve_experiment


def build_observed_platform():
    scheduler = Scheduler()
    hub = TelemetryHub(scheduler)
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="uni-a", pop_id=0, kind="university", backbone=True),
        PopConfig(name="uni-b", pop_id=1, kind="university", backbone=True),
    ], telemetry=hub)
    approve_experiment(platform, "exp")
    client = ExperimentClient(scheduler, "exp", platform)
    return scheduler, hub, platform, client


def test_station_observes_full_session_lifecycle():
    scheduler, hub, platform, client = build_observed_platform()
    station = hub.station

    client.openvpn_up("uni-a")
    client.bird_start("uni-a")
    scheduler.run_for(10)
    assert "exp:exp" in station.up_peers()

    prefix = client.profile.prefixes[0]
    client.announce(prefix, pops=["uni-a"])
    scheduler.run_for(10)
    # The experiment session's UPDATE reached the station pre-policy.
    assert station.rib_in_size("exp:exp") >= 1
    assert station.routes_for(prefix, peer="exp:exp")

    client.bird_stop("uni-a")
    scheduler.run_for(10)

    kinds = [m.kind for m in station.messages_for("exp:exp")]
    assert kinds[0] == "peer-up"
    assert "route-monitoring" in kinds
    assert kinds[-1] == "peer-down"
    assert kinds[-2] == "stats-report"
    assert station.peers["exp:exp"].state == "down"
    # Mirror flushed on PeerDown.
    assert station.rib_in("exp:exp") == []


def test_registry_accumulates_datapath_metrics():
    scheduler, hub, platform, client = build_observed_platform()
    client.openvpn_up("uni-a")
    client.bird_start("uni-a")
    scheduler.run_for(10)
    client.announce(client.profile.prefixes[0], pops=["uni-a"])
    scheduler.run_for(10)

    registry = hub.registry
    updates = registry.counter("bgp_session_updates", labels=("peer",
                                                              "direction"))
    assert updates.labels("exp:exp", "in").value >= 1
    accepts = registry.counter("security_control_accepts", labels=("pop",))
    assert accepts.labels("uni-a").value >= 1
    transitions = registry.counter("bgp_session_transitions",
                                   labels=("peer", "state"))
    assert transitions.labels("exp:exp", "established").value == 1
    pipeline = registry.gauge("vbgp_pipeline_counters",
                              labels=("node", "counter"))
    assert pipeline.labels(
        "uni-a", "updates_from_experiments"
    ).value >= 1
    # Tracer recorded the vBGP pipeline span for the experiment UPDATE.
    assert any(
        event.name == "vbgp.experiment_update" for event in hub.tracer.events
    )


def test_cli_renders_telemetry():
    scheduler, hub, platform, client = build_observed_platform()
    cli = ToolkitCli(client)
    client.openvpn_up("uni-a")
    client.bird_start("uni-a")
    scheduler.run_for(10)

    summary = cli.run("peering telemetry summary")
    # exp session (both the platform and the client side) plus the two
    # backbone mesh sessions are all observed.
    assert "peers_up=4" in summary
    peers = cli.run("peering telemetry peers")
    assert "exp:exp: up" in peers
    metrics = cli.run("peering telemetry metrics")
    assert "repro_bgp_session_transitions_total" in metrics
    as_json = cli.run("peering telemetry metrics json")
    assert '"namespace": "repro"' in as_json
    events = cli.run("peering telemetry events 5")
    assert "bgp.session.fsm" in events or "vbgp." in events


def test_telemetry_disabled_platform_reports_so():
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="uni-a", pop_id=0, kind="university"),
    ])
    approve_experiment(platform, "exp")
    client = ExperimentClient(scheduler, "exp", platform)
    cli = ToolkitCli(client)
    assert cli.run("peering telemetry summary") == (
        "telemetry disabled (platform built without a hub)"
    )


def test_reconnect_produces_second_peer_up():
    """A vBGP restart cycle is visible as down/up churn at the station."""
    scheduler, hub, platform, client = build_observed_platform()
    client.openvpn_up("uni-a")
    client.bird_start("uni-a")
    scheduler.run_for(10)
    client.bird_stop("uni-a")
    scheduler.run_for(5)
    client.bird_start("uni-a")
    scheduler.run_for(10)
    record = hub.station.peers["exp:exp"]
    assert record.ups == 2
    assert record.downs >= 1
    assert record.state == "up"
