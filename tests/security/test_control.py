"""Control-plane enforcement engine tests (§4.7 policies)."""

import pytest

from repro.bgp.attributes import (
    Community,
    LargeCommunity,
    UnknownAttribute,
    local_route,
    originate,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.security import (
    Capability,
    ControlPlaneEnforcer,
    EnforcerOverloaded,
    EnforcerState,
    ExperimentProfile,
)
from repro.vbgp.communities import announce_to_neighbor

ALLOCATION = IPv4Prefix.parse("184.164.224.0/23")
NH = IPv4Address.parse("100.125.0.2")


@pytest.fixture
def enforcer(scheduler):
    engine = ControlPlaneEnforcer(
        scheduler, platform_asns=frozenset({47065, 61574})
    )
    engine.register_experiment(
        ExperimentProfile(name="x1", asns=frozenset({47065}),
                          prefixes=(ALLOCATION,))
    )
    return engine


def announce(enforcer, route, experiment="x1", pop="pop0"):
    return enforcer.filter_routes(experiment, [route], pop)


def ok_route(prefix="184.164.224.0/24", **kwargs):
    return local_route(IPv4Prefix.parse(prefix), next_hop=NH, **kwargs)


def test_own_prefix_accepted(enforcer):
    assert announce(enforcer, ok_route())


def test_subprefix_of_allocation_accepted(enforcer):
    assert announce(enforcer, ok_route("184.164.225.0/24"))


def test_foreign_prefix_rejected(enforcer):
    assert announce(enforcer, ok_route("8.8.8.0/24")) == []
    assert enforcer.violations[-1].reason.startswith("prefix")


def test_too_specific_rejected(enforcer):
    assert announce(enforcer, ok_route("184.164.224.0/25")) == []
    assert "more specific" in enforcer.violations[-1].reason


def test_unknown_experiment_rejected(enforcer):
    assert announce(enforcer, ok_route(), experiment="ghost") == []


def test_unauthorized_origin_rejected(enforcer):
    spoofed = originate(IPv4Prefix.parse("184.164.224.0/24"), 3356, NH)
    assert announce(enforcer, spoofed) == []
    assert "origin" in enforcer.violations[-1].reason


def test_platform_asn_origin_accepted(enforcer):
    route = originate(IPv4Prefix.parse("184.164.224.0/24"), 61574, NH)
    assert announce(enforcer, route)


def test_prepending_own_asn_is_basic(enforcer):
    route = originate(IPv4Prefix.parse("184.164.224.0/24"), 47065, NH)
    assert announce(enforcer, route.prepended(47065, 5))


def test_poisoning_requires_capability(enforcer):
    poisoned = originate(IPv4Prefix.parse("184.164.224.0/24"), 47065, NH)
    poisoned = poisoned.with_attributes(
        as_path=poisoned.as_path.prepended(3356).prepended(47065)
    )
    assert announce(enforcer, poisoned) == []
    profile = enforcer.profiles["x1"]
    profile.grant(Capability.AS_PATH_POISONING, limit=2)
    assert announce(enforcer, poisoned)


def test_poisoning_limit_enforced(enforcer):
    profile = enforcer.profiles["x1"]
    profile.grant(Capability.AS_PATH_POISONING, limit=1)
    route = originate(IPv4Prefix.parse("184.164.224.0/24"), 47065, NH)
    path = route.as_path
    for asn in (111, 222):
        path = path.prepended(asn)
    route = route.with_attributes(as_path=path.prepended(47065))
    assert announce(enforcer, route) == []


def test_transit_capability_allows_foreign_path(enforcer):
    profile = enforcer.profiles["x1"]
    profile.grant(Capability.PREFIX_TRANSIT)
    route = originate(IPv4Prefix.parse("184.164.224.0/24"), 47065, NH)
    route = route.with_attributes(
        as_path=route.as_path.prepended(3356).prepended(174)
    )
    assert announce(enforcer, route)


def test_long_as_path_rejected(enforcer):
    """The §7.1 'thousands of ASes' experiment class is rejected."""
    route = ok_route().prepended(47065, 60)
    assert announce(enforcer, route) == []


def test_communities_stripped_without_capability(enforcer):
    route = ok_route().add_communities(Community(3356, 70))
    accepted = announce(enforcer, route)
    assert accepted
    assert accepted[0].communities == frozenset()
    assert any("communities stripped" in v.reason
               for v in enforcer.violations)


def test_communities_pass_with_capability(enforcer):
    enforcer.profiles["x1"].grant(Capability.BGP_COMMUNITIES, limit=4)
    route = ok_route().add_communities(Community(3356, 70))
    accepted = announce(enforcer, route)
    assert accepted[0].communities == {Community(3356, 70)}


def test_community_limit_strips_over_budget(enforcer):
    enforcer.profiles["x1"].grant(Capability.BGP_COMMUNITIES, limit=1)
    route = ok_route().add_communities(Community(1, 1), Community(2, 2))
    accepted = announce(enforcer, route)
    assert accepted[0].communities == frozenset()


def test_control_communities_always_allowed(enforcer):
    route = ok_route().add_communities(announce_to_neighbor(3))
    accepted = announce(enforcer, route)
    assert announce_to_neighbor(3) in accepted[0].communities


def test_large_communities_gated(enforcer):
    lc = LargeCommunity(47065, 1, 2)
    route = ok_route().with_attributes(large_communities=frozenset({lc}))
    accepted = announce(enforcer, route)
    assert accepted[0].attributes.large_communities == frozenset()
    enforcer.profiles["x1"].grant(Capability.LARGE_COMMUNITIES, limit=4)
    accepted = announce(enforcer, route)
    assert lc in accepted[0].attributes.large_communities


def test_transitive_attributes_gated(enforcer):
    unknown = UnknownAttribute(type_code=99, flags=0xC0, value=b"x")
    route = ok_route().with_attributes(unknown=(unknown,))
    accepted = announce(enforcer, route)
    assert accepted[0].attributes.unknown == ()
    enforcer.profiles["x1"].grant(Capability.TRANSITIVE_ATTRIBUTES)
    accepted = announce(enforcer, route)
    assert accepted[0].attributes.unknown == (unknown,)


def test_rate_limit_144_per_day(scheduler, enforcer):
    route = ok_route()
    accepted_total = 0
    for _ in range(150):
        accepted_total += len(announce(enforcer, route))
    assert accepted_total == 144
    assert any("rate limit" in v.reason for v in enforcer.violations)


def test_rate_limit_window_slides(scheduler, enforcer):
    route = ok_route()
    for _ in range(144):
        announce(enforcer, route)
    assert announce(enforcer, route) == []
    scheduler.run_for(25 * 3600)  # a day later the budget refreshes
    assert announce(enforcer, route)


def test_rate_limit_is_per_pop(scheduler, enforcer):
    route = ok_route()
    for _ in range(144):
        announce(enforcer, route, pop="pop0")
    assert announce(enforcer, route, pop="pop0") == []
    assert announce(enforcer, route, pop="pop1")  # separate budget


def test_rate_limit_is_per_prefix(scheduler, enforcer):
    for _ in range(144):
        announce(enforcer, ok_route("184.164.224.0/24"))
    assert announce(enforcer, ok_route("184.164.224.0/24")) == []
    assert announce(enforcer, ok_route("184.164.225.0/24"))


def test_withdraw_counts_against_budget(scheduler, enforcer):
    prefix = IPv4Prefix.parse("184.164.224.0/24")
    for _ in range(144):
        assert enforcer.check_withdraw("x1", prefix, "pop0")
    assert not enforcer.check_withdraw("x1", prefix, "pop0")


def test_overload_raises(enforcer):
    enforcer.overloaded = True
    with pytest.raises(EnforcerOverloaded):
        announce(enforcer, ok_route())


def test_state_shared_across_engines(scheduler):
    """Cross-PoP AS-wide policies: two engines, one state store (§3.3)."""
    state = EnforcerState(per_pop_limit=10)
    profile = ExperimentProfile(name="x1", asns=frozenset({47065}),
                                prefixes=(ALLOCATION,))
    engine_a = ControlPlaneEnforcer(scheduler, frozenset({47065}), state)
    engine_b = ControlPlaneEnforcer(scheduler, frozenset({47065}), state)
    engine_a.register_experiment(profile)
    engine_b.register_experiment(profile)
    for _ in range(10):
        engine_a.filter_routes("x1", [ok_route()], "pop-a")
    prefix = IPv4Prefix.parse("184.164.224.0/24")
    assert state.platform_count("x1", prefix, scheduler.now) == 10
    assert state.count("x1", prefix, "pop-b", scheduler.now) == 0
