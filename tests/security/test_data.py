"""Data-plane enforcement tests: anti-spoof, rate limiting, counters."""


from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.frames import (
    EtherType,
    EthernetFrame,
    IpProto,
    IPv4Packet,
    UdpDatagram,
)
from repro.security.data import (
    AntiSpoofProgram,
    BpfContext,
    BpfProgram,
    BpfVerdict,
    DataPlaneEnforcer,
    TokenBucketProgram,
)

EXP_MAC = MacAddress.parse("02:aa:00:00:00:02")
ALLOCATION = IPv4Prefix.parse("184.164.224.0/24")


def frame(src_ip="184.164.224.1", size=100, src_mac=EXP_MAC):
    packet = IPv4Packet(
        src=IPv4Address.parse(src_ip),
        dst=IPv4Address.parse("8.8.8.8"),
        proto=IpProto.UDP,
        payload=UdpDatagram(1, 2, b"x" * size),
    )
    return EthernetFrame(src=src_mac, dst=MacAddress(0x027F00000001),
                         ethertype=EtherType.IPV4, payload=packet)


def ctx(now=0.0):
    return BpfContext(now=now, iface="exp0", pop="testpop")


class TestAntiSpoof:
    def test_allowed_source_passes(self):
        program = AntiSpoofProgram()
        program.allow(EXP_MAC, (ALLOCATION,))
        verdict, _ = program.run(frame(), ctx())
        assert verdict == BpfVerdict.PASS

    def test_spoofed_source_dropped(self):
        program = AntiSpoofProgram()
        program.allow(EXP_MAC, (ALLOCATION,))
        verdict, _ = program.run(frame(src_ip="8.8.4.4"), ctx())
        assert verdict == BpfVerdict.DROP
        assert program.drops == 1

    def test_unknown_sender_not_policed(self):
        program = AntiSpoofProgram()
        verdict, _ = program.run(
            frame(src_mac=MacAddress.parse("02:bb:00:00:00:09")), ctx()
        )
        assert verdict == BpfVerdict.PASS

    def test_deregistration(self):
        program = AntiSpoofProgram()
        program.allow(EXP_MAC, (ALLOCATION,))
        program.remove(EXP_MAC)
        verdict, _ = program.run(frame(src_ip="8.8.4.4"), ctx())
        assert verdict == BpfVerdict.PASS

    def test_non_ip_frames_pass(self):
        program = AntiSpoofProgram()
        program.allow(EXP_MAC, (ALLOCATION,))
        arp_frame = EthernetFrame(src=EXP_MAC, dst=MacAddress.broadcast(),
                                  ethertype=EtherType.ARP, payload=b"")
        verdict, _ = program.run(arp_frame, ctx())
        assert verdict == BpfVerdict.PASS


class TestTokenBucket:
    def test_burst_allowed_then_limited(self):
        size = frame(size=80).size
        program = TokenBucketProgram(rate_bps=8000.0, burst_bytes=5 * size)
        passes = 0
        for _ in range(10):
            verdict, _ = program.run(frame(size=80), ctx(now=0.0))
            passes += verdict == BpfVerdict.PASS
        assert passes == 5  # exactly the burst allowance
        assert program.drops == 5

    def test_tokens_refill_over_time(self):
        size = frame(size=80).size
        program = TokenBucketProgram(rate_bps=8000.0, burst_bytes=size)
        assert program.run(frame(size=80), ctx(now=0.0))[0] == BpfVerdict.PASS
        assert program.run(frame(size=80), ctx(now=0.0))[0] == BpfVerdict.DROP
        # 1000 bytes/s refill → after size/1000 seconds one frame fits.
        later = size / 1000 + 0.01
        assert program.run(frame(size=80), ctx(now=later))[0] == BpfVerdict.PASS

    def test_keys_isolate_flows(self):
        size = frame().size
        program = TokenBucketProgram(rate_bps=8.0, burst_bytes=size)
        other = MacAddress.parse("02:cc:00:00:00:01")
        assert program.run(frame(), ctx())[0] == BpfVerdict.PASS
        assert program.run(frame(), ctx())[0] == BpfVerdict.DROP
        assert program.run(frame(src_mac=other), ctx())[0] == BpfVerdict.PASS


class TestEnforcerChain:
    def test_register_and_enforce(self, scheduler):
        enforcer = DataPlaneEnforcer(scheduler, pop="testpop")
        enforcer.register_experiment(EXP_MAC, (ALLOCATION,))
        assert enforcer.ingress(frame(), "exp0", None) is not None
        assert enforcer.ingress(frame(src_ip="1.2.3.4"), "exp0", None) is None
        assert enforcer.frames_seen == 2
        assert enforcer.frames_dropped == 1

    def test_counters_accumulate(self, scheduler):
        enforcer = DataPlaneEnforcer(scheduler, pop="testpop")
        enforcer.register_experiment(EXP_MAC, (ALLOCATION,))
        for _ in range(3):
            enforcer.ingress(frame(), "exp0", None)
        assert enforcer.counters.packets[EXP_MAC] == 3
        assert enforcer.counters.bytes[EXP_MAC] > 0

    def test_custom_program_added(self, scheduler):
        class DropAll(BpfProgram):
            def run(self, f, c):
                return BpfVerdict.DROP, f

        enforcer = DataPlaneEnforcer(scheduler, pop="testpop")
        enforcer.add_program(DropAll())
        assert enforcer.ingress(frame(), "exp0", None) is None

    def test_rate_limit_program_integration(self, scheduler):
        enforcer = DataPlaneEnforcer(scheduler, pop="testpop")
        enforcer.register_experiment(EXP_MAC, (ALLOCATION,))
        enforcer.add_program(
            TokenBucketProgram(rate_bps=800.0, burst_bytes=150)
        )
        passed = sum(
            enforcer.ingress(frame(size=80), "exp0", None) is not None
            for _ in range(5)
        )
        assert passed == 1
