"""Capability framework and shared-state tests."""

from repro.netsim.addr import IPv4Prefix
from repro.security import (
    Capability,
    CapabilityGrant,
    EnforcerState,
    ExperimentProfile,
)

ALLOCATION = IPv4Prefix.parse("184.164.224.0/23")


def profile(**kwargs):
    defaults = dict(name="x1", asns=frozenset({47065}),
                    prefixes=(ALLOCATION,))
    defaults.update(kwargs)
    return ExperimentProfile(**defaults)


def test_default_has_no_capabilities():
    p = profile()
    for capability in Capability:
        assert not p.has(capability)


def test_grant_and_revoke():
    p = profile()
    p.grant(Capability.BGP_COMMUNITIES, limit=4)
    assert p.has(Capability.BGP_COMMUNITIES)
    p.revoke(Capability.BGP_COMMUNITIES)
    assert not p.has(Capability.BGP_COMMUNITIES)


def test_limit_checked():
    p = profile()
    p.grant(Capability.AS_PATH_POISONING, limit=2)
    assert p.has(Capability.AS_PATH_POISONING, count=2)
    assert not p.has(Capability.AS_PATH_POISONING, count=3)


def test_unlimited_grant():
    grant = CapabilityGrant(Capability.PREFIX_TRANSIT)
    assert grant.within(10_000)


def test_owns_prefix_covers_subprefixes():
    p = profile()
    assert p.owns_prefix(IPv4Prefix.parse("184.164.224.0/24"))
    assert p.owns_prefix(ALLOCATION)
    assert not p.owns_prefix(IPv4Prefix.parse("184.164.226.0/24"))
    assert not p.owns_prefix(IPv4Prefix.parse("184.164.224.0/22"))


def test_enforcer_state_window_prunes():
    state = EnforcerState(per_pop_limit=5, window=100.0)
    prefix = IPv4Prefix.parse("184.164.224.0/24")
    for t in range(5):
        assert state.record("x1", prefix, "pop", float(t))
    assert not state.record("x1", prefix, "pop", 50.0)
    # After the window slides, old events expire.
    assert state.record("x1", prefix, "pop", 105.0)


def test_enforcer_state_total_counter():
    state = EnforcerState()
    prefix = IPv4Prefix.parse("184.164.224.0/24")
    state.record("x1", prefix, "a", 0.0)
    state.record("x1", prefix, "b", 0.0)
    assert state.total_updates == 2
    assert state.platform_count("x1", prefix, 0.0) == 2
