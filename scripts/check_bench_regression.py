#!/usr/bin/env python3
"""Benchmark regression gate: freshly-run JSON vs. committed baselines.

CI runs the gated benchmarks (``BENCH_update_load``,
``BENCH_fig2_delegation``, ``BENCH_chaos_convergence``,
``BENCH_shard_scaleout``), then invokes this script to compare the fresh
``BENCH_<name>.json`` files against the baselines committed under
``benchmarks/baselines/``.  A metric regresses when it moves more than
``--tolerance`` (default 25%) in its *bad* direction:

* throughput-style metrics (``…per_s…``) must not *drop* below
  ``baseline * (1 - tolerance)``;
* latency/convergence-style metrics (``…_s`` / ``…_us`` suffixes) and
  memory-style metrics (``…bytes…``) must not *rise* above
  ``baseline * (1 + tolerance)``;
* anything else (counters such as ``scenarios``, ``seeds``,
  ``…_reconnects``, and ratios such as ``utilization_at_p99_pct``) is
  informational and never gates.

``real_*`` metrics (measured wall-clock on real parallel backends) and
``cpu_count`` are machine properties, so they never gate against the
committed baseline.  Instead they are gated *relatively* via
``RELATIVE_GATES``: e.g. ``shard_scaleout`` must show
``real_speedup_mp4 >= 1.8`` — mp at 4 shards beating the sync
reference — whenever the runner has at least 4 CPU cores, and the gate
skips with a notice on smaller runners.  This keeps the ±25% absolute
gate machine-independent for parallel benches.

Improvements beyond tolerance are reported but do not fail the gate —
refresh the baseline in the same PR that makes things faster.

Exit status: 0 clean, 1 regression, 2 missing/unreadable inputs.

Reproduce a CI failure locally::

    PYTHONPATH=src python -m pytest benchmarks/bench_update_load.py \
        benchmarks/bench_fig2_delegation.py \
        benchmarks/bench_chaos_convergence.py \
        benchmarks/bench_shard_scaleout.py \
        benchmarks/bench_fig6a_memory.py \
        benchmarks/bench_footprint.py \
        benchmarks/bench_overload_shed.py -q
    FULLTABLE_PREFIXES=200000 FULLTABLE_CHURN=10000 \
        FULLTABLE_MEMORY_PREFIXES=100000 PYTHONPATH=src python -m pytest \
        benchmarks/bench_fulltable_load.py \
        benchmarks/bench_fulltable_memory.py -q
    python scripts/check_bench_regression.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

GATED_BENCHMARKS = (
    "update_load",
    "fig2_delegation",
    "chaos_convergence",
    "shard_scaleout",
    "fig6a_memory",
    "footprint",
    "fulltable_load",
    "fulltable_memory",
    "intent_dryrun",
    "overload_shed",
    "fleet_convergence",
)
DEFAULT_TOLERANCE = 0.25

_REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BASELINE_DIR = _REPO_ROOT / "benchmarks" / "baselines"

HIGHER_IS_BETTER = "higher"
LOWER_IS_BETTER = "lower"
NEUTRAL = "neutral"

# Relative gates: (metric, minimum, cpu_floor, description).  The gate
# only applies when the fresh run's ``cpu_count`` is at least
# ``cpu_floor`` — real parallel speedup needs real cores.  On smaller
# runners the gate skips with a notice instead of failing, so the CI
# matrix stays green on shared/throttled machines while still catching
# scale-out regressions wherever cores are available.
RELATIVE_GATES = {
    "shard_scaleout": (
        (
            "real_speedup_mp4",
            1.8,
            4,
            "mp backend at 4 shards vs the sync reference",
        ),
    ),
    "fleet_convergence": (
        (
            "real_updates_per_s_fleet",
            5.0,
            2,
            "lockstep churn throughput of a real 3-process fleet "
            "over loopback TCP",
        ),
    ),
}


def check_relative_gates(
    name: str,
    current: Dict[str, float],
) -> Tuple[List[str], List[str]]:
    """Apply ``RELATIVE_GATES`` for one benchmark's fresh metrics.

    Returns ``(regressions, notes)``.  A missing gated metric is a
    regression (the bench stopped measuring it); a runner below the
    core floor produces a skip notice, never a failure.
    """
    regressions: List[str] = []
    notes: List[str] = []
    for metric, minimum, cpu_floor, description in RELATIVE_GATES.get(name, ()):
        try:
            cores = int(current.get("cpu_count", 0))
        except (TypeError, ValueError):
            cores = 0
        value = current.get(metric)
        if value is None:
            regressions.append(
                f"relative gate {metric!r} >= {minimum} "
                f"({description}): metric missing from fresh run"
            )
            continue
        try:
            measured = float(value)
        except (TypeError, ValueError):
            regressions.append(
                f"relative gate {metric!r}: non-numeric value {value!r}"
            )
            continue
        if cores < cpu_floor:
            notes.append(
                f"skipped relative gate {metric!r} >= {minimum} "
                f"({description}): runner has {cores} core(s) < "
                f"{cpu_floor} floor (measured {measured:.2f}x)"
            )
            continue
        if measured < minimum:
            regressions.append(
                f"relative gate {metric!r}: {measured:.2f}x < "
                f"{minimum}x minimum ({description}, "
                f"{cores} cores)"
            )
        else:
            notes.append(
                f"relative gate {metric!r}: {measured:.2f}x >= "
                f"{minimum}x ({description}, {cores} cores)"
            )
    return regressions, notes


def metric_direction(key: str) -> str:
    """Infer which way a metric is allowed to move.

    ``per_s`` marks throughput (checked before the ``_s`` suffix, which
    would otherwise misclassify it); trailing ``_s`` / ``_us`` mark
    durations; ``bytes`` marks memory footprints.  Everything else is
    informational.

    ``real_*`` metrics and ``cpu_count`` are checked first: they are
    properties of the machine the bench ran on (physical-core
    wall-clock), so comparing them against a baseline recorded on a
    different runner is meaningless — they gate relatively via
    ``RELATIVE_GATES`` instead.
    """
    if key.startswith("real_") or key == "cpu_count":
        return NEUTRAL
    if "per_s" in key:
        return HIGHER_IS_BETTER
    if "bytes" in key or key.endswith(("_s", "_us", "_ms")):
        return LOWER_IS_BETTER
    return NEUTRAL


def compare_metrics(
    baseline: Dict[str, float],
    current: Dict[str, float],
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Return ``(regressions, notes)`` for one benchmark's metrics.

    Metric-set mismatches are reported symmetrically with a clear
    message rather than a traceback: a gated metric present in the
    baseline but absent from the fresh run regresses (the benchmark
    silently stopped measuring something it used to), while a metric
    present in the fresh run but absent from the baseline regresses too
    (the committed baseline is stale and must be refreshed in the same
    PR that added the metric).  Neutral metrics only produce notes.
    """
    regressions: List[str] = []
    notes: List[str] = []
    for key in sorted(set(current) - set(baseline)):
        message = (
            f"metric {key!r} present in fresh run but missing from "
            "baseline — refresh the committed baseline"
        )
        if metric_direction(key) == NEUTRAL:
            notes.append(message)
        else:
            regressions.append(message)
    for key in sorted(baseline):
        direction = metric_direction(key)
        if key not in current:
            message = (
                f"metric {key!r} present in baseline but missing from "
                "fresh run"
            )
            if direction == NEUTRAL:
                notes.append(message)
            else:
                regressions.append(message)
            continue
        if direction == NEUTRAL:
            continue
        try:
            base = float(baseline[key])
            now = float(current[key])
        except (TypeError, ValueError):
            regressions.append(
                f"metric {key!r} is not numeric "
                f"(baseline={baseline[key]!r}, fresh={current[key]!r})"
            )
            continue
        if base == 0.0:
            notes.append(f"{key}: zero baseline, skipped")
            continue
        ratio = now / base
        if direction == HIGHER_IS_BETTER and ratio < 1.0 - tolerance:
            regressions.append(
                f"{key}: {now:,.2f} vs baseline {base:,.2f} "
                f"({(1.0 - ratio) * 100:.1f}% drop > "
                f"{tolerance * 100:.0f}% tolerance)"
            )
        elif direction == LOWER_IS_BETTER and ratio > 1.0 + tolerance:
            regressions.append(
                f"{key}: {now:,.2f} vs baseline {base:,.2f} "
                f"({(ratio - 1.0) * 100:.1f}% rise > "
                f"{tolerance * 100:.0f}% tolerance)"
            )
        elif abs(ratio - 1.0) > tolerance:
            notes.append(
                f"{key}: improved {abs(ratio - 1.0) * 100:.1f}% beyond "
                "tolerance — consider refreshing the baseline"
            )
    return regressions, notes


def load_metrics(
    path: Path,
) -> Tuple[Optional[Dict[str, float]], Optional[str]]:
    """Read one ``BENCH_<name>.json``; returns ``(metrics, error)``.

    Every failure mode gets its own message instead of collapsing into a
    generic "missing": an unreadable file, invalid JSON, valid JSON whose
    top level is not an object (a bare list or number would previously
    escape as an ``AttributeError``), and an object without a usable
    ``metrics`` mapping.
    """
    try:
        payload = json.loads(path.read_text())
    except OSError:
        return None, f"MISSING ({path})"
    except ValueError as exc:
        return None, f"INVALID JSON ({path}): {exc}"
    if not isinstance(payload, dict):
        return None, (
            f"INVALID ({path}): top-level JSON is "
            f"{type(payload).__name__}, expected an object with a "
            "'metrics' mapping"
        )
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return None, (
            f"INVALID ({path}): 'metrics' is "
            f"{type(metrics).__name__}, expected an object"
        )
    return metrics, None


def run_gate(
    baseline_dir: Path,
    current_dir: Path,
    names=GATED_BENCHMARKS,
    tolerance: float = DEFAULT_TOLERANCE,
    out=sys.stdout,
) -> int:
    """Compare every gated benchmark; returns the process exit code."""
    exit_code = 0
    for name in names:
        baseline_path = baseline_dir / f"BENCH_{name}.json"
        current_path = current_dir / f"BENCH_{name}.json"
        baseline, baseline_error = load_metrics(baseline_path)
        current, current_error = load_metrics(current_path)
        if baseline is None:
            print(f"{name}: baseline {baseline_error}", file=out)
            exit_code = max(exit_code, 2)
            continue
        if current is None:
            print(f"{name}: fresh run {current_error}", file=out)
            exit_code = max(exit_code, 2)
            continue
        regressions, notes = compare_metrics(baseline, current, tolerance)
        rel_regressions, rel_notes = check_relative_gates(name, current)
        regressions.extend(rel_regressions)
        notes.extend(rel_notes)
        verdict = "REGRESSED" if regressions else "ok"
        print(f"{name}: {verdict}", file=out)
        for line in regressions:
            print(f"  - {line}", file=out)
        for line in notes:
            print(f"  ~ {line}", file=out)
        if regressions:
            exit_code = max(exit_code, 1)
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "names",
        nargs="*",
        default=list(GATED_BENCHMARKS),
        help="benchmark names to gate (default: all gated benchmarks)",
    )
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        default=DEFAULT_BASELINE_DIR,
        help="directory holding the committed BENCH_<name>.json baselines",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=Path.cwd(),
        help="directory holding the freshly generated BENCH_<name>.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional movement in the bad direction (default 0.25)",
    )
    args = parser.parse_args(argv)
    return run_gate(
        args.baseline_dir,
        args.current_dir,
        names=args.names or GATED_BENCHMARKS,
        tolerance=args.tolerance,
    )


if __name__ == "__main__":
    sys.exit(main())
