#!/usr/bin/env python3
"""Inbound traffic engineering with communities, prepending, and the
backbone — the cloud-provider setting of §4.3.

The experiment runs at two PoPs connected by the backbone and shifts
where inbound traffic enters:

* *selective announcement*: whitelist communities export the prefix only
  to chosen neighbors (fine-grained control, §3.2.1),
* *prepending*: inflate the path at one PoP so the other is preferred,
* verification end to end: probes from a remote stub AS are observed
  arriving via the intended neighbor (source-MAC attribution).

Run:  python examples/traffic_engineering.py
"""

from repro.internet import InternetConfig, build_internet
from repro.netsim.frames import IcmpMessage, IcmpType, IpProto, IPv4Packet
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient
from repro.vbgp.communities import announce_to_pop


def probe_ingress(scheduler, internet, client, prefix, label):
    """Ping the experiment prefix from a remote stub; report ingress."""
    source = internet.stubs[0]
    before = len(client.delivered)
    packet = IPv4Packet(
        src=source.prefixes[0].address_at(9),
        dst=prefix.address_at(1),
        proto=IpProto.ICMP,
        payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST),
    )
    source.receive_packet(packet)
    scheduler.run_for(20)
    arrivals = client.delivered[before:]
    if not arrivals:
        print(f"  [{label}] probe did not arrive")
        return None
    _packet, smac, iface = arrivals[0]
    pop = client._pop_for_iface(iface)
    print(f"  [{label}] probe entered at PoP {pop!r} "
          f"delivered by neighbor vMAC {smac}")
    return pop


def main() -> None:
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="west", pop_id=0, kind="university", backbone=True),
        PopConfig(name="east", pop_id=1, kind="university", backbone=True),
    ])
    internet = build_internet(
        scheduler, platform,
        InternetConfig(n_tier1=2, n_transit=4, n_stub=6),
    )
    scheduler.run_for(30)

    platform.submit_proposal(ExperimentProposal(
        name="te", contact="noc@example.com",
        goals="inbound traffic engineering across PoPs",
        execution_plan="selective announcements + prepending",
    ))
    client = ExperimentClient(scheduler, "te", platform)
    for pop in platform.pops:
        client.openvpn_up(pop)
        client.bird_start(pop)
    scheduler.run_for(10)
    prefix = client.profile.prefixes[0]

    print("== scenario A: announce everywhere (baseline) ==")
    client.announce(prefix)
    scheduler.run_for(30)
    baseline_pop = probe_ingress(scheduler, internet, client, prefix,
                                 "baseline")

    print("\n== scenario B: selective announcement — west only ==")
    client.withdraw(prefix)
    scheduler.run_for(20)
    # Whitelist community: export only to neighbors at PoP 0 (west).
    client.announce(prefix, communities=(announce_to_pop(0),))
    scheduler.run_for(30)
    west_pop = probe_ingress(scheduler, internet, client, prefix,
                             "west-only")

    print("\n== scenario C: prefer east via prepending at west ==")
    client.withdraw(prefix)
    scheduler.run_for(20)
    client.announce(prefix, pops=["west"], prepend=5)
    client.announce(prefix, pops=["east"])
    scheduler.run_for(30)
    east_pop = probe_ingress(scheduler, internet, client, prefix,
                             "prepend-west")

    print("\n== summary ==")
    print(f"  baseline ingress:      {baseline_pop}")
    print(f"  west-only ingress:     {west_pop}")
    print(f"  prepend-at-west moves ingress to: {east_pop}")
    print("\nThe same prefix, three ingress policies — enacted purely with "
          "standard BGP mechanisms through vBGP.")


if __name__ == "__main__":
    main()
