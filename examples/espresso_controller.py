#!/usr/bin/env python3
"""An Espresso-style egress controller (the X2 of Figure 1).

Large providers override BGP's single-best-path with centralized,
performance-aware egress control (Espresso [104], Edge Fabric [81]). On
PEERING, such a controller "just works": it learns *all* routes over
ADD-PATH, measures each egress (here: RTT via pings through each
neighbor), and steers traffic per packet by choosing which virtual next
hop — i.e. which destination MAC — to use. No vBGP cooperation needed.

Run:  python examples/espresso_controller.py
"""

from dataclasses import dataclass
from typing import Optional

from repro.bgp.attributes import Route
from repro.internet import InternetConfig, build_internet
from repro.netsim.addr import IPv4Address
from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient


@dataclass
class EgressStats:
    route: Route
    sent_at: float = 0.0
    rtt: Optional[float] = None


class EgressController:
    """Measure every available egress, then steer traffic to the best."""

    def __init__(self, scheduler, client, pop_name):
        self.scheduler = scheduler
        self.client = client
        self.pop_name = pop_name
        self.probes: dict[int, EgressStats] = {}

    def measure(self, destination: IPv4Address) -> list[EgressStats]:
        routes = self.client.lookup(destination, self.pop_name)
        print(f"  {len(routes)} candidate egresses for {destination}")

        def on_reply(packet, icmp, now):
            stats = self.probes.get(icmp.sequence)
            if stats is not None and stats.rtt is None:
                stats.rtt = now - stats.sent_at

        self.client.icmp_listeners.append(on_reply)
        for sequence, route in enumerate(routes, start=1):
            stats = EgressStats(route=route, sent_at=self.scheduler.now)
            self.probes[sequence] = stats
            self.client.ping(self.pop_name, route, destination,
                             sequence=sequence)
        self.scheduler.run_for(20)
        self.client.icmp_listeners.remove(on_reply)
        measured = [s for s in self.probes.values() if s.rtt is not None]
        return sorted(measured, key=lambda s: s.rtt or 1e9)

    def steer(self, destination: IPv4Address, stats: EgressStats,
              packets: int = 5) -> None:
        for _ in range(packets):
            self.client.send_via(self.pop_name, stats.route, IPv4Packet(
                src=self.client.profile.prefixes[0].address_at(1),
                dst=destination,
                proto=IpProto.UDP,
                payload=UdpDatagram(5000, 33434, b"payload"),
            ))


def main() -> None:
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="edge", pop_id=0, kind="ixp", backbone=True),
        PopConfig(name="dc", pop_id=1, kind="university", backbone=True),
    ])
    internet = build_internet(
        scheduler, platform,
        InternetConfig(n_tier1=3, n_transit=5, n_stub=8,
                       ixp_members_per_ixp=5, bilateral_fraction=0.6),
    )
    scheduler.run_for(30)

    platform.submit_proposal(ExperimentProposal(
        name="espresso",
        contact="sre@example.com",
        goals="evaluate centralized egress control",
        execution_plan="probe all egresses, steer to the fastest",
    ))
    client = ExperimentClient(scheduler, "espresso", platform)
    for pop in platform.pops:
        client.openvpn_up(pop)
        client.bird_start(pop)
    scheduler.run_for(10)
    client.announce(client.profile.prefixes[0])
    scheduler.run_for(20)

    controller = EgressController(scheduler, client, "edge")
    destination = internet.stubs[0].prefixes[0].address_at(1)
    print(f"== measuring egresses toward {destination} ==")
    ranked = controller.measure(destination)
    for stats in ranked:
        print(f"  via {stats.route.next_hop} "
              f"[{stats.route.as_path}]  rtt={stats.rtt * 1000:.1f} ms")
    if not ranked:
        print("  no reachable egresses (try a different destination)")
        return

    best = ranked[0]
    print(f"\n== steering traffic via {best.route.next_hop} "
          f"(AS{best.route.as_path.origin_as}) ==")
    pop = platform.pops["edge"]
    forwarded_before = pop.stack.counters["forwarded"]
    controller.steer(destination, best)
    scheduler.run_for(10)
    print(f"  packets forwarded by the vBGP node: "
          f"{pop.stack.counters['forwarded'] - forwarded_before}")
    print("  (each left via the controller-chosen neighbor — per-packet "
          "routing decisions, delegated natively, §3.2.2)")


if __name__ == "__main__":
    main()
