#!/usr/bin/env python3
"""Controlled prefix hijack + ARTEMIS-style detection and mitigation.

Security experiments on PEERING demonstrated real interception attacks
and defenses ([83] ARTEMIS, [20] SICO, [15] Bitcoin hijacks). The
platform makes this safe: hijacks are only permitted against PEERING's
*own* address space (two experiments of the same platform), and the
enforcer blocks anything else.

This demo runs three acts:

1. a victim experiment announces its prefix and serves traffic;
2. an attacker experiment announces a *more specific* of the victim's
   prefix — the enforcer rejects it (it is not the attacker's
   allocation), demonstrating the §4.7 hijack protection;
3. the victim then simulates a self-hijack from a second PoP (a
   controlled experiment on its own prefix, as the paper's experiments
   do), and an ARTEMIS-like monitor detects the origin change from
   collector feeds and mitigates by announcing more specifics.

Run:  python examples/hijack_demo.py
"""

from repro.internet import InternetConfig, build_internet
from repro.netsim.addr import IPv4Prefix
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient


class ArtemisMonitor:
    """Detect hijacks of a prefix from route-collector feeds."""

    def __init__(self, glass, prefix, legitimate_origins):
        self.glass = glass
        self.prefix = prefix
        self.legitimate = set(legitimate_origins)

    def check(self):
        alerts = []
        for path in self.glass.visible_paths(self.prefix):
            if path and path[-1] not in self.legitimate:
                alerts.append(path)
        return alerts


def main() -> None:
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="uni-a", pop_id=0, kind="university", backbone=True),
        PopConfig(name="uni-b", pop_id=1, kind="university", backbone=True),
    ])
    internet = build_internet(
        scheduler, platform,
        InternetConfig(n_tier1=2, n_transit=4, n_stub=5,
                       with_looking_glass=True),
    )
    scheduler.run_for(30)

    for name in ("victim", "attacker"):
        platform.submit_proposal(ExperimentProposal(
            name=name, contact=f"{name}@example.edu",
            goals="hijack study (controlled, own address space)",
            execution_plan="announce / observe / mitigate",
        ))
    victim = ExperimentClient(scheduler, "victim", platform)
    attacker = ExperimentClient(scheduler, "attacker", platform)
    victim.openvpn_up("uni-a"); victim.bird_start("uni-a")
    victim.openvpn_up("uni-b"); victim.bird_start("uni-b")
    attacker.openvpn_up("uni-b"); attacker.bird_start("uni-b")
    scheduler.run_for(10)

    prefix = victim.profile.prefixes[0]
    print(f"== act 1: victim announces {prefix} from uni-a ==")
    victim.announce(prefix, pops=["uni-a"])
    scheduler.run_for(20)
    monitor = ArtemisMonitor(internet.looking_glass, prefix,
                             legitimate_origins={47065})
    print(f"  collector sees {len(internet.looking_glass.visible_paths(prefix))} "
          f"paths; alerts: {monitor.check()}")

    print(f"\n== act 2: attacker tries to hijack {prefix} ==")
    pop_b = platform.pops["uni-b"]
    rejected_before = pop_b.control_enforcer.routes_rejected
    sub = IPv4Prefix.from_address(prefix.network, 24)
    attacker.announce(sub)
    scheduler.run_for(10)
    rejected = pop_b.control_enforcer.routes_rejected - rejected_before
    print(f"  enforcer rejections: {rejected}")
    for violation in pop_b.control_enforcer.violations[-1:]:
        print(f"  violation: [{violation.experiment}] {violation.reason}")
    print("  the hijack never left the PoP — §4.7's 'cannot announce ... "
          "address space that is not part of the experiment's allocation'")

    print("\n== act 3: controlled self-hijack + ARTEMIS mitigation ==")
    # The victim simulates an attacker using PEERING's own resources from
    # a different PoP with a different (platform) origin pattern: a
    # controlled experiment, like the paper's security studies.
    victim.announce(prefix, pops=["uni-b"], origin_asn=61574)
    scheduler.run_for(20)
    alerts = monitor.check()
    print(f"  monitor alerts: {len(alerts)}")
    for path in alerts:
        print(f"    suspicious origin AS{path[-1]} on path {path}")
    if alerts:
        print("  mitigating: victim withdraws and re-announces from the "
              "home PoP (ARTEMIS-style self-defense)")
        victim.withdraw(prefix, pops=["uni-b"])
        victim.announce(prefix, pops=["uni-a"])
        scheduler.run_for(20)
        print(f"  alerts after mitigation: {monitor.check()}")


if __name__ == "__main__":
    main()
