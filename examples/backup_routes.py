#!/usr/bin/env python3
"""Uncovering hidden/backup routes with selective announcements and
AS-path poisoning — the X1-style study of §2.2 / §7.1 ([13] Anwar et al.,
"Investigating interdomain routing policies in the wild").

BGP only propagates best paths, so backup routes are invisible to passive
measurement. A PEERING experiment can *cause* them to appear: poison the
AS currently carrying its prefix and watch which alternative paths the
rest of the Internet switches to, via a route collector.

Run:  python examples/backup_routes.py
"""

from repro.internet import InternetConfig, build_internet
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import (
    CapabilityRequest,
    ExperimentProposal,
)
from repro.security.capabilities import Capability
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient


def visible_paths(glass, prefix):
    return {
        " ".join(str(asn) for asn in path)
        for path in glass.visible_paths(prefix)
    }


def main() -> None:
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="uni-a", pop_id=0, kind="university", backbone=True),
        PopConfig(name="uni-b", pop_id=1, kind="university", backbone=True),
    ])
    internet = build_internet(
        scheduler, platform,
        InternetConfig(n_tier1=3, n_transit=5, n_stub=6,
                       with_looking_glass=True),
    )
    glass = internet.looking_glass
    scheduler.run_for(30)

    # The experiment requests the poisoning capability (reviewed per §7.1:
    # small limits pass, large ones are rejected).
    decision, reason = platform.submit_proposal(ExperimentProposal(
        name="backup-routes",
        contact="researcher@example.edu",
        goals="reverse-engineer routing policy preferences",
        execution_plan="poison each transit in turn; observe collectors",
        capability_requests=[
            CapabilityRequest(Capability.AS_PATH_POISONING, limit=2,
                              justification="one poisoned AS at a time"),
        ],
    ))
    print(f"proposal: {decision.value} ({reason})")

    client = ExperimentClient(scheduler, "backup-routes", platform)
    for pop in platform.pops:
        client.openvpn_up(pop)
        client.bird_start(pop)
    scheduler.run_for(10)
    prefix = client.profile.prefixes[0]

    print(f"\n== baseline announcement of {prefix} ==")
    client.announce(prefix)
    scheduler.run_for(30)
    baseline = visible_paths(glass, prefix)
    print("paths seen at the collector:")
    for path in sorted(baseline):
        print(f"  [{path}]")

    # Find which transit ASes currently carry the prefix.
    carriers = {
        asn
        for path in glass.visible_paths(prefix)
        for asn in path
        if any(transit.asn == asn for transit in internet.transits)
    }
    print(f"\ntransit ASes on observed paths: {sorted(carriers)}")

    revealed_total = set()
    for victim in sorted(carriers):
        print(f"\n== poisoning AS{victim} "
              "(withdraw, re-announce with the victim in the path) ==")
        client.withdraw(prefix)
        scheduler.run_for(10)
        client.announce(prefix, poison=(victim,))
        scheduler.run_for(30)
        poisoned_view = visible_paths(glass, prefix)
        revealed = {
            path for path in poisoned_view
            if str(victim) not in path.split()[:-3]  # victim only in tail
        } - baseline
        for path in sorted(poisoned_view):
            marker = " <- backup!" if path in revealed else ""
            print(f"  [{path}]{marker}")
        revealed_total |= revealed

    print(f"\nbackup paths revealed by poisoning: {len(revealed_total)}")
    print("(these never appear in passive BGP feeds — the measurement the "
          "paper's §7.1 'Measurements of hidden routes' enables)")


if __name__ == "__main__":
    main()
