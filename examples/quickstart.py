#!/usr/bin/env python3
"""Quickstart: boot a mini PEERING, connect an experiment, look around.

This walks the Figure 1/2 scenario end to end:

1. build a platform with one IXP PoP and two university PoPs plus a
   synthetic Internet,
2. submit and approve an experiment proposal,
3. open tunnels and BGP sessions (the Table 1 toolkit surface),
4. announce the experiment prefix to the world,
5. inspect the ADD-PATH routes vBGP exports (virtual next hops!),
6. pick a route and ping a destination through the chosen neighbor.

Run:  python examples/quickstart.py
"""

from repro.internet import InternetConfig, build_internet
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient, ToolkitCli


def main() -> None:
    scheduler = Scheduler()

    print("== building the platform and a synthetic Internet ==")
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="ix-west", pop_id=0, kind="ixp", backbone=True),
        PopConfig(name="uni-east", pop_id=1, kind="university",
                  backbone=True),
        PopConfig(name="uni-south", pop_id=2, kind="university",
                  backbone=True),
    ])
    internet = build_internet(
        scheduler, platform,
        InternetConfig(n_tier1=2, n_transit=4, n_stub=8,
                       ixp_members_per_ixp=4),
    )
    scheduler.run_for(30)  # let BGP converge
    for name, pop in platform.pops.items():
        print(f"  PoP {name}: {pop.neighbor_count} neighbors, "
              f"{len(pop.node.known_routes())} known routes")

    print("\n== experiment workflow (§4.6) ==")
    decision, reason = platform.submit_proposal(ExperimentProposal(
        name="quickstart",
        contact="you@example.edu",
        goals="kick the tires",
        execution_plan="announce one prefix, ping the world",
    ))
    print(f"  proposal review: {decision.value} ({reason})")

    client = ExperimentClient(scheduler, "quickstart", platform)
    cli = ToolkitCli(client)
    for pop in platform.pops:
        print(" ", cli.run(f"peering openvpn up {pop}"))
        print(" ", cli.run(f"peering bgp start {pop}"))
    scheduler.run_for(10)
    print("  sessions:", client.bird_status())

    prefix = client.profile.prefixes[0]
    print(f"\n== announcing {prefix} everywhere ==")
    print(" ", cli.run(f"peering prefix announce {prefix}"))
    scheduler.run_for(20)

    print("\n== ADD-PATH visibility (Figure 2a) ==")
    destination = internet.tier1s[0].prefixes[0]
    routes = client.routes(destination, "ix-west")
    print(f"  routes to {destination} at ix-west: {len(routes)}")
    for route in routes[:5]:
        print(f"    via {route.next_hop}  path [{route.as_path}]")

    print("\n== per-packet egress selection (Figure 2b) ==")
    target = destination.address_at(1)
    candidates = client.lookup(target, "ix-west")
    chosen = candidates[0]
    print(f"  pinging {target} via next hop {chosen.next_hop} "
          f"(origin AS{chosen.as_path.origin_as})")
    client.ping("ix-west", chosen, target)
    scheduler.run_for(15)
    for packet, icmp in client.received_icmp():
        print(f"  reply: {icmp.icmp_type.name} from {packet.src}")
    if client.delivered:
        _packet, smac, _iface = client.delivered[-1]
        print(f"  delivered by neighbor with virtual MAC {smac} "
              "(source-MAC attribution, §3.2.2)")

    print("\nDone.")


if __name__ == "__main__":
    main()
