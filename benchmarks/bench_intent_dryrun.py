"""§6h — intent-layer dry-run throughput over a loaded mux.

A `peering intent plan` clones the relevant platform state, replays the
ChangeSet through the real security enforcer, computes per-neighbor
export diffs, and evaluates the full invariant catalog — all without
touching the live mux.  This bench measures that whole pipeline as
plans/s against a mux carrying a 200k-prefix upstream table (the scale
at which the kernel-consistency sweep and state cloning dominate), and
cross-checks the determinism property (two plans over the same state
must serialize byte-identically).

``INTENT_DRYRUN_PREFIXES`` / ``INTENT_DRYRUN_PLANS`` override the scale
for quick local runs; committed baselines use the defaults.
"""

import gc
import os
import time

from benchmarks.reporting import format_table, report, report_json
from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.intent import ChangeSet, IntentController, announce_op, withdraw_op
from repro.internet.fulltable import FullTableGenerator
from repro.netsim.addr import IPv4Prefix
from repro.platform.experiment import ExperimentProposal
from repro.platform.peering import PeeringPlatform
from repro.platform.pop import PopConfig
from repro.sim import Scheduler
from repro.toolkit.client import ExperimentClient

PREFIXES = int(os.environ.get("INTENT_DRYRUN_PREFIXES", "200000"))
PLANS = int(os.environ.get("INTENT_DRYRUN_PLANS", "10"))
SEED = 20260808


def build_world():
    """One-PoP platform: an established transit, a 200k-prefix upstream
    feed, and one connected experiment with a live announcement."""
    scheduler = Scheduler()
    platform = PeeringPlatform(
        scheduler,
        pop_configs=[PopConfig(name="core", pop_id=0, kind="ixp")],
    )
    pop = platform.pops["core"]

    port = pop.provision_neighbor("transit", 65010, kind="transit")
    speaker = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65010, router_id=port.address)
    )
    speaker.attach_neighbor(
        NeighborConfig(name="transit:feed", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    speaker.originate(local_route(IPv4Prefix.parse("10.10.0.0/16"),
                                  next_hop=port.address))

    # The full-table upstream is fed directly into the pipeline (no wire
    # session), exactly like bench_fulltable_load.
    pop.provision_neighbor("upstream", 65020, kind="peer")
    generator = FullTableGenerator(prefix_count=PREFIXES, seed=SEED)
    for update in generator.table_updates():
        pop.node._upstream_update("upstream", update)
        scheduler.run_until(scheduler.now)

    platform.submit_proposal(ExperimentProposal(
        name="x0",
        contact="bench@example.edu",
        goals="dry-run throughput",
        execution_plan="plan in a loop",
        prefix_count=2,
    ))
    client = ExperimentClient(scheduler, "x0", platform)
    client.openvpn_up("core")
    client.bird_start("core")
    scheduler.run_for(30)
    client.announce(client.profile.prefixes[0])
    scheduler.run_for(30)

    controller = IntentController(
        scheduler, platform, {"x0": client},
        neighbor_speakers={"transit": speaker},
        neighbor_pops={"transit": "core"},
    )
    changeset = ChangeSet(name="bench", ops=(
        announce_op("x0", str(client.profile.prefixes[1]), pops=("core",)),
        withdraw_op("x0", str(client.profile.prefixes[0])),
    ))
    return controller, changeset


def test_intent_dryrun_plans_per_s(benchmark):
    def run():
        gc.collect()
        controller, changeset = build_world()
        # Determinism cross-check before timing: same state, same bytes.
        first = controller.evaluator.evaluate(changeset)
        second = controller.evaluator.evaluate(changeset)
        assert first.to_bytes() == second.to_bytes()
        assert first.ok

        start = time.perf_counter()
        for _ in range(PLANS):
            plan = controller.plan(changeset)
        elapsed = time.perf_counter() - start
        return elapsed, plan

    elapsed, plan = benchmark.pedantic(run, rounds=1, iterations=1)
    plans_per_s = PLANS / elapsed
    diff_neighbors = len(plan.report.changed_neighbors())

    rows = [
        ["upstream table prefixes", f"{PREFIXES:,}", "200k (acceptance)"],
        ["plans timed", f"{PLANS}", "—"],
        ["plans/s", f"{plans_per_s:,.2f}", "—"],
        ["mean plan latency", f"{elapsed / PLANS * 1e3:,.1f} ms", "—"],
        ["neighbors diffed/plan", f"{diff_neighbors}", "—"],
    ]
    report(
        "intent_dryrun",
        "§6h intent dry-run throughput (enforcer replay + export diff "
        "+ invariant catalog per plan)\n"
        + format_table(["metric", "measured", "target"], rows),
    )
    report_json("intent_dryrun", {
        "prefixes": PREFIXES,
        "plans": PLANS,
        "plans_per_s": plans_per_s,
        "ops_per_plan": 2,
    })

    assert plan.report.ok
    assert plans_per_s > 0
