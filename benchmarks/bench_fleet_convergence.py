"""Fleet convergence: lockstep churn throughput over real processes.

Boots the CI 3-PoP world as one OS process per PoP over loopback TCP
(DESIGN.md §6k), wires real external speakers against the compiled
ports, then drives a churn workload in lockstep — every update fully
settles across all processes (sockets drained, frozen-time cascades
run dry, quiescence confirmed against asynchronous loopback delivery)
before the next is applied.

All measured numbers are ``real_*`` wall-clock: they depend on the
machine's process-spawn latency, loopback stack, and core count, so
the absolute ±25% gate ignores them.  The regression gate instead
applies the relative floor ``real_updates_per_s_fleet >= 5`` on
runners with at least 2 cores (``scripts/check_bench_regression.py``)
— a fleet that converges slower than that has lost its lockstep
barrier, not a cache line.

Outputs ``BENCH_fleet_convergence.json`` for CI diffing.
"""

from __future__ import annotations

import os
import tempfile
import time

from benchmarks.reporting import format_table, report, report_json
from repro.fleet.compiler import compile_world
from repro.fleet.differential import SocketFleetLeg
from repro.fleet.spec import demo_world_spec
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator

POPS = 3
UPDATES = 30
PREFIXES = 20
PORT_BASE = 26200


def test_fleet_convergence_benchmark():
    spec = demo_world_spec(pops=POPS, port_base=PORT_BASE)
    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        fleet = compile_world(spec, tmp)

        boot_start = time.perf_counter()
        leg = SocketFleetLeg(fleet)
        try:
            leg.wire_driver()
            assert leg.unestablished() == []
            boot_s = time.perf_counter() - boot_start

            count = len(leg.endpoints)
            per_endpoint = -(-UPDATES // count)
            for index, endpoint in enumerate(leg.endpoints):
                generator = ChurnGenerator(
                    AMSIX_PROFILE, prefix_count=PREFIXES, seed=index)
                endpoint.updates = generator.make_updates(per_endpoint)

            churn_start = time.perf_counter()
            for step in range(UPDATES):
                endpoint = leg.endpoints[step % count]
                leg.apply_update(endpoint, endpoint.updates[step // count])
                leg.settle()
            churn_s = time.perf_counter() - churn_start

            routes = sum(
                leg.pop_call(name, "summary")["routes"]
                for name in fleet.pop_names())
        finally:
            leg.close()

    metrics = {
        "pops": POPS,
        "updates": UPDATES,
        "routes_converged": routes,
        "real_boot_s": round(boot_s, 3),
        "real_converge_s": round(churn_s, 3),
        "real_updates_per_s_fleet": round(UPDATES / churn_s, 2),
        "cpu_count": os.cpu_count() or 1,
    }
    report("fleet_convergence", "\n".join([
        "Fleet convergence (3 OS processes over loopback TCP)",
        "",
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in sorted(metrics.items())],
        ),
    ]))
    report_json("fleet_convergence", metrics)
    assert metrics["real_updates_per_s_fleet"] > 0
