"""§6 — sustained update load at a large IXP (the AMS-IX workload).

"During an 18h period in March 2018, Peering's vBGP router in AMS-IX
processed an average of 21.8 updates/sec (with a 99th percentile of
approximately 400 updates/sec)."

We replay a calibrated churn process through a real vBGP node (an
attached upstream session, a connected ADD-PATH experiment fan-out, and
per-neighbor kernel-table maintenance) and verify the node sustains the
p99 burst rate with headroom.
"""

import pytest

from benchmarks.reporting import format_table, report, report_json
from repro.bgp.messages import UpdateMessage
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.metrics import measure_processing
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry


@pytest.fixture(scope="module")
def loaded_node():
    """A PoP with one upstream whose session is short-circuited so we can
    inject UPDATE messages directly into the vBGP pipeline."""
    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="ams", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    pop.provision_neighbor("upstream", 65010, kind="peer")
    # An experiment attachment so every update also fans out.
    from repro.bgp.transport import connect_pair
    from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
    from repro.bgp.session import BgpSession, SessionConfig

    ours, theirs = connect_pair(scheduler, rtt=0.001)
    pop.node.attach_experiment(
        name="x", asn=47065,
        prefixes=(IPv4Prefix.parse("184.164.224.0/24"),),
        tunnel_ip=IPv4Address.parse("100.125.0.2"),
        tunnel_mac=MacAddress.parse("02:aa:00:00:00:02"),
        channel=ours,
    )
    client = BgpSession(
        scheduler,
        SessionConfig(local_asn=47065,
                      local_id=IPv4Address.parse("100.125.0.2"),
                      peer_asn=47065, addpath=True),
        theirs, on_update=lambda _s, _u: None,
    )
    client.start()
    scheduler.run_for(5)
    return scheduler, pop


def test_amsix_update_load(loaded_node, benchmark):
    scheduler, pop = loaded_node
    generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=5000, seed=77)
    updates = generator.make_updates(4000)

    def process(update: UpdateMessage):
        pop.node._upstream_update("upstream", update)
        scheduler.run_until(scheduler.now)  # drain immediate events

    measurement = benchmark.pedantic(
        lambda: measure_processing("vbgp-pipeline", process, updates),
        rounds=1, iterations=1,
    )
    sustainable = measurement.max_sustainable_rate()
    rates = generator.second_rates(18 * 3600)
    rates.sort()
    mean_rate = sum(rates) / len(rates)
    p99 = rates[int(len(rates) * 0.99)]
    rows = [
        ["average updates/s", f"{mean_rate:.1f}", "21.8"],
        ["p99 updates/s", str(p99), "~400"],
        ["utilization @ average",
         f"{measurement.utilization(mean_rate):.2f}%", "—"],
        ["utilization @ p99",
         f"{measurement.utilization(p99):.1f}%", "—"],
        ["max sustainable", f"{sustainable:,.0f}/s", "'thousands'"],
    ]
    report(
        "amsix_update_load",
        "§6 AMS-IX update workload, 18h replay through the vBGP pipeline\n"
        + format_table(["metric", "measured", "paper"], rows),
    )
    report_json("update_load", {
        "mean_rate_updates_per_s": mean_rate,
        "p99_rate_updates_per_s": p99,
        "max_sustainable_updates_per_s": sustainable,
        "utilization_at_p99_pct": measurement.utilization(p99),
    })
    assert 18 <= mean_rate <= 26
    assert 250 <= p99 <= 500
    assert sustainable > 1000  # "thousands of updates per second"
    assert measurement.utilization(p99) < 100
