"""Fast-path ablation — every perf toggle measured on/off, results equal.

The PR's optimizations are all gated behind :mod:`repro.perf` flags so
they can be ablated independently:

* ``stride_lpm``   — 8-bit stride trie vs. the binary-trie reference,
* ``lpm_cache``    — bounded LRU lookup cache on :class:`LpmTable`,
* ``encode_memo``  — attribute/NLRI/message wire-encoding memoization,
* ``intern_attrs`` — interning pools for decoded attributes,
* ``fanout_batch`` — multi-NLRI UPDATE coalescing in the vBGP fan-out.

For each configuration this benchmark runs two workloads **and checks the
functional output is byte-for-byte identical to the all-flags-on
baseline** — an optimization that changes results is a bug, not a win:

* the §6 churn pipeline (updates/s through a vBGP node with an attached
  ADD-PATH experiment, fingerprinted by the routes the experiment
  actually receives), and
* a forwarding-table microbenchmark (lookups/s over a realistic prefix
  mix, fingerprinted by every lookup result).
"""

import contextlib
import gc
import random
import time


@contextlib.contextmanager
def _gc_paused():
    """Pause the cyclic collector during a timed region (standard
    benchmarking hygiene; results must not depend on what ran before)."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()

from benchmarks.reporting import format_table, report, report_json
from repro import perf
from repro.bgp.messages import UpdateMessage
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.lpm import LpmTable
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry

UPDATE_COUNT = 2000
LPM_PREFIXES = 4000
LPM_LOOKUPS = 20000

# (label, flag overrides) — baseline first, then each toggle off alone.
CONFIGS = [
    ("all_on", {}),
    ("no_stride_lpm", {"stride_lpm": False}),
    ("no_lpm_cache", {"lpm_cache": False}),
    ("no_encode_memo", {"encode_memo": False}),
    ("no_intern_attrs", {"intern_attrs": False}),
    ("no_fanout_batch", {"fanout_batch": False}),
    ("all_off", {"stride_lpm": False, "lpm_cache": False,
                 "encode_memo": False, "intern_attrs": False,
                 "fanout_batch": False}),
]


def _route_fingerprint(update: UpdateMessage) -> tuple:
    """A hashable, content-only view of one received UPDATE."""
    announced = tuple(
        (
            str(route.prefix),
            route.path_id,
            str(route.attributes.next_hop),
            route.attributes.as_path.asns,
            tuple(sorted(
                (c.asn, c.value) for c in route.attributes.communities
            )),
            route.attributes.med,
        )
        for route in update.routes()
    )
    withdrawn = tuple(
        (str(prefix), path_id) for prefix, path_id in update.withdrawn
    )
    return announced, withdrawn


def _run_pipeline() -> tuple[float, frozenset]:
    """Feed seeded churn through a vBGP node; return (seconds, result).

    The functional result is the multiset-free set of every route change
    the attached experiment received, plus the node's final kernel-route
    counters — identical across ablation configs by construction.
    """
    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="abl", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    pop.provision_neighbor("upstream", 65010, kind="peer")
    from repro.bgp.session import BgpSession, SessionConfig
    from repro.bgp.transport import connect_pair

    ours, theirs = connect_pair(scheduler, rtt=0.001)
    pop.node.attach_experiment(
        name="x", asn=47065,
        prefixes=(IPv4Prefix.parse("184.164.224.0/24"),),
        tunnel_ip=IPv4Address.parse("100.125.0.2"),
        tunnel_mac=MacAddress.parse("02:aa:00:00:00:02"),
        channel=ours,
    )
    received: list[UpdateMessage] = []
    client = BgpSession(
        scheduler,
        SessionConfig(local_asn=47065,
                      local_id=IPv4Address.parse("100.125.0.2"),
                      peer_asn=47065, addpath=True),
        theirs, on_update=lambda _s, update: received.append(update),
    )
    client.start()
    scheduler.run_for(5)

    generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=5000, seed=99)
    updates = generator.make_updates(UPDATE_COUNT)
    with _gc_paused():
        start = time.perf_counter()
        for update in updates:
            pop.node._upstream_update("upstream", update)
            scheduler.run_until(scheduler.now)
        elapsed = time.perf_counter() - start
    scheduler.run_for(5)

    changes = frozenset(
        fp for update in received for fp in _route_fingerprint(update)[0]
    ) | frozenset(
        fp for update in received for fp in _route_fingerprint(update)[1]
    )
    fingerprint = frozenset({
        ("changes", changes),
        ("installed", pop.node.counters["routes_installed"]),
        ("removed", pop.node.counters["routes_removed"]),
        ("rib", frozenset(
            str(p) for p, _ in pop.node.upstreams["upstream"].rib
        )),
    })
    return elapsed, fingerprint


def _run_lpm() -> tuple[float, tuple]:
    """Time seeded lookups on a freshly built table; return results too."""
    rng = random.Random(4242)
    table: LpmTable[int] = LpmTable()
    base = IPv4Prefix.parse("10.0.0.0/8")
    prefixes = []
    subnets = base.subnets(24)
    for _ in range(LPM_PREFIXES):
        prefixes.append(next(subnets))
    for index, prefix in enumerate(prefixes):
        table.insert(prefix, index)
    # Covering routes and a default, so lookups cross levels.
    table.insert(IPv4Prefix.parse("10.0.0.0/8"), -1)
    table.insert(IPv4Prefix.parse("0.0.0.0/0"), -2)
    # Zipf-ish mix: a hot working set plus a uniform tail (cache-relevant).
    hot = [p.address_at(1) for p in prefixes[:64]]
    queries = []
    for _ in range(LPM_LOOKUPS):
        if rng.random() < 0.8:
            queries.append(rng.choice(hot))
        else:
            queries.append(IPv4Address(rng.randint(0, (1 << 32) - 1)))
    with _gc_paused():
        start = time.perf_counter()
        results = []
        for address in queries:
            entry = table.lookup(address)
            results.append(None if entry is None else entry.value)
        elapsed = time.perf_counter() - start
    return elapsed, tuple(results)


REPEATS = 3  # best-of-N per configuration (single runs are too noisy)


def test_ablation_fastpath():
    rows = []
    metrics = {}
    baseline_pipeline = None
    baseline_lpm = None
    # Warm-up: one throwaway run so the first measured configuration does
    # not absorb import/allocator cold-start costs.
    _run_pipeline()
    _run_lpm()
    for label, overrides in CONFIGS:
        pipe_s = lpm_s = float("inf")
        with perf.flags(**overrides):
            for _ in range(REPEATS):
                elapsed, pipe_result = _run_pipeline()
                pipe_s = min(pipe_s, elapsed)
                elapsed, lpm_result = _run_lpm()
                lpm_s = min(lpm_s, elapsed)
        if baseline_pipeline is None:
            baseline_pipeline = pipe_result
            baseline_lpm = lpm_result
        else:
            # The whole point: toggles change speed, never results.
            assert pipe_result == baseline_pipeline, (
                f"{label}: pipeline output diverged from baseline"
            )
            assert lpm_result == baseline_lpm, (
                f"{label}: LPM lookups diverged from baseline"
            )
        updates_per_s = UPDATE_COUNT / pipe_s
        lookups_per_s = LPM_LOOKUPS / lpm_s
        rows.append([label, f"{updates_per_s:,.0f}", f"{lookups_per_s:,.0f}"])
        metrics[f"updates_per_s_{label}"] = updates_per_s
        metrics[f"lpm_lookups_per_s_{label}"] = lookups_per_s
    report(
        "ablation_fastpath",
        "Fast-path ablation (functional output identical in every row)\n"
        + format_table(["configuration", "updates/s", "LPM lookups/s"],
                       rows),
    )
    report_json("ablation_fastpath", metrics)
    # Headline: the full fast path beats the everything-off build.  The
    # LPM gap is wide and stable; the pipeline gap is real but this short
    # run carries scheduler noise, so allow a small tolerance.
    assert (metrics["lpm_lookups_per_s_all_on"]
            > metrics["lpm_lookups_per_s_all_off"])
    assert (metrics["updates_per_s_all_on"]
            > 0.9 * metrics["updates_per_s_all_off"])
