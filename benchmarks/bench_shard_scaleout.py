"""Scale-out: sharded vBGP fan-out throughput versus shard count.

The paper's mux fans every neighbor's churn out to every experiment in
one serial loop (§4.2–§4.4); ``BENCH_update_load`` measures that loop's
ceiling.  This bench drives the same pipeline through
:class:`repro.shard.ShardedFanout` at shard counts 1/2/4/8 and reports
the *modeled* scale-out, then re-runs the workload on the **real**
execution backends (DESIGN.md §6j) and reports measured wall-clock.

Modeled parallelism (documented per the acceptance criterion): the
reproduction is a discrete-event simulation, so the modeled leg's
shards never run on threads.  Work items execute serially in global
ingress order; each item's measured wall-clock is charged to the shard
that owns its neighbor, and a drain window's modeled elapsed time is
``max(per-shard busy) + merge cost`` — the wall clock N worker
processes (each owning a subset of the neighbor sessions) would
exhibit for the same arrival window.  The differential harness
separately proves the merged output is byte-identical at every shard
count, so this speedup is not bought with divergence.

Real parallelism (ISSUE 9): the ``real_*`` metrics time the identical
workload against the sync reference (a serial replay through
``DirectExecutor``) and against the ``mp``/``async`` backends, where
UPDATE encodes genuinely fan out across worker processes / event-loop
tasks.  ``cpu_count`` rides along in the JSON so the regression gate
can require ``real_speedup_mp4 >= 1.8`` only on runners with >= 4
physical cores and skip-with-notice elsewhere — real speedup is a
machine property, not a cost-model artefact.
"""

from __future__ import annotations

import gc
import os
import time

import pytest

from benchmarks.reporting import format_table, report, report_json
from repro import perf
from repro.bgp.session import BgpSession, SessionConfig
from repro.bgp.transport import connect_pair
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.shard import DirectExecutor, ShardedFanout, make_partition
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry

SHARD_COUNTS = (1, 2, 4, 8)
NEIGHBORS = 32
EXPERIMENTS = 8
UPDATES_PER_NEIGHBOR = 75
#: Partition seed chosen for even neighbor spread at 4 and 8 shards
#: (32 gids land 9/9/7/7 at four shards) — documented, not magic: hash
#: placement over a few dozen keys is lumpy, and production deployments
#: would likewise pick a seed after inspecting the assignment.
PARTITION_SEED = 4
#: Per shard count, run this many repetitions and keep the fastest —
#: standard bench practice to shed scheduler/allocator noise.
REPETITIONS = 2


def _build_pop():
    """A PoP with ``NEIGHBORS`` bilateral peers and a wide experiment
    fan-out (each inbound update re-encodes toward every experiment)."""
    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="ams", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    for index in range(NEIGHBORS):
        pop.provision_neighbor(f"peer{index}", 65000 + index, kind="peer")
    clients = []
    for index in range(EXPERIMENTS):
        ours, theirs = connect_pair(scheduler, rtt=0.001)
        pop.node.attach_experiment(
            name=f"x{index}", asn=47065,
            prefixes=(IPv4Prefix.parse(f"184.164.{224 + index}.0/24"),),
            tunnel_ip=IPv4Address.parse(f"100.125.{index}.2"),
            tunnel_mac=MacAddress.parse(f"02:aa:00:00:{index:02x}:02"),
            channel=ours,
        )
        client = BgpSession(
            scheduler,
            SessionConfig(local_asn=47065,
                          local_id=IPv4Address.parse(f"100.125.{index}.2"),
                          peer_asn=47065, addpath=True),
            theirs, on_update=lambda _s, _u: None,
        )
        client.start()
        clients.append(client)
    scheduler.run_for(5)
    return scheduler, pop


def _churn_streams():
    """One independent churn stream per neighbor (balanced work), with
    non-overlapping prefix pools so withdraws hit their own announcer."""
    return [
        ChurnGenerator(
            AMSIX_PROFILE, prefix_count=200, seed=99 + index,
            base_prefix=f"{60 + index}.0.0.0/8",
        ).make_updates(UPDATES_PER_NEIGHBOR)
        for index in range(NEIGHBORS)
    ]


def _run_once(shard_count: int):
    """Replay the churn through a ``shard_count``-way engine; return
    (updates/s over modeled elapsed, engine stats, workers)."""
    scheduler, pop = _build_pop()
    node = pop.node
    neighbors = [node.upstreams[f"peer{i}"] for i in range(NEIGHBORS)]
    streams = _churn_streams()
    engine = ShardedFanout(
        node, shard_count,
        make_partition("neighbor", shard_count, seed=PARTITION_SEED),
        auto_drain=False,
    )
    total = 0
    # GC pauses would otherwise land on whichever shard/merge phase is
    # running and distort the per-phase attribution.
    gc.collect()
    gc.disable()
    try:
        with perf.flags(encode_memo=True, fanout_batch=True):
            for round_index in range(UPDATES_PER_NEIGHBOR):
                # One modeled arrival window: every neighbor session
                # delivers one update "simultaneously", then the engine
                # drains and merges.
                for neighbor_index in range(NEIGHBORS):
                    engine.submit(
                        neighbors[neighbor_index],
                        streams[neighbor_index][round_index],
                    )
                    total += 1
                engine.flush()
                scheduler.run_until(scheduler.now)
    finally:
        gc.enable()
    elapsed = engine.stats.modeled_elapsed_s
    rate = total / elapsed if elapsed > 0 else 0.0
    return rate, engine.stats, engine.workers


def _run_sharded(shard_count: int):
    """Best of ``REPETITIONS`` runs (fastest modeled rate)."""
    best = None
    for _ in range(REPETITIONS):
        result = _run_once(shard_count)
        if best is None or result[0] > best[0]:
            best = result
    return best


# -- the real-backend leg (ISSUE 9) ---------------------------------------

#: Real legs run with the encode memo off so every UPDATE encode is
#: real work for the workers to parallelise (with the memo on, the
#: sync reference pays each distinct attribute set once and the
#: comparison measures cache hits, not scale-out).
_REAL_FLAGS = dict(encode_memo=False, fanout_batch=True)


def _run_real_sync():
    """The sync reference: serial replay through ``DirectExecutor``,
    measured in real wall-clock (this is the ``model-off`` baseline
    the relative gate compares the backends against)."""
    scheduler, pop = _build_pop()
    node = pop.node
    neighbors = [node.upstreams[f"peer{i}"] for i in range(NEIGHBORS)]
    streams = _churn_streams()
    executor = DirectExecutor(node)
    total = 0
    gc.collect()
    gc.disable()
    try:
        with perf.flags(**_REAL_FLAGS):
            started = time.perf_counter()
            for round_index in range(UPDATES_PER_NEIGHBOR):
                for neighbor_index in range(NEIGHBORS):
                    node._process_upstream_changes(
                        neighbors[neighbor_index],
                        streams[neighbor_index][round_index],
                        executor,
                    )
                    total += 1
                scheduler.run_until(scheduler.now)
            elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    return total / elapsed if elapsed > 0 else 0.0


def _run_real_backend(backend: str, shard_count: int):
    """Replay the same windowed workload on a real backend; returns
    (updates/s over measured wall-clock, engine stats)."""
    scheduler, pop = _build_pop()
    node = pop.node
    neighbors = [node.upstreams[f"peer{i}"] for i in range(NEIGHBORS)]
    streams = _churn_streams()
    engine = ShardedFanout(
        node, shard_count,
        make_partition("neighbor", shard_count, seed=PARTITION_SEED),
        auto_drain=False,
        backend=backend,
    )
    total = 0
    gc.collect()
    gc.disable()
    try:
        with perf.flags(**_REAL_FLAGS):
            started = time.perf_counter()
            for round_index in range(UPDATES_PER_NEIGHBOR):
                for neighbor_index in range(NEIGHBORS):
                    engine.submit(
                        neighbors[neighbor_index],
                        streams[neighbor_index][round_index],
                    )
                    total += 1
                engine.flush()
                scheduler.run_until(scheduler.now)
            elapsed = time.perf_counter() - started
    finally:
        gc.enable()
        engine.close()
    rate = total / elapsed if elapsed > 0 else 0.0
    return rate, engine.stats


def _best_real(runner, *args):
    best = None
    for _ in range(REPETITIONS):
        result = runner(*args)
        rate = result[0] if isinstance(result, tuple) else result
        if best is None or rate > (
            best[0] if isinstance(best, tuple) else best
        ):
            best = result
    return best


def test_shard_scaleout():
    rates = {}
    stats = {}
    rows = []
    for count in SHARD_COUNTS:
        rate, stat, workers = _run_sharded(count)
        rates[count] = rate
        stats[count] = stat
        rows.append([
            str(count),
            f"{rate:,.0f}/s",
            f"{stat.speedup(workers):.2f}x",
            f"{stat.merge_s / stat.modeled_elapsed_s * 100:.0f}%",
            str(stat.ops_applied),
        ])
    speedup_x4 = rates[4] / rates[1]
    speedup_x8 = rates[8] / rates[1]

    # Real-backend leg: measured wall-clock, not attribution.
    cpu_count = os.cpu_count() or 1
    real_sync = _best_real(_run_real_sync)
    real_mp4, mp_stats = _best_real(_run_real_backend, "mp", 4)
    real_async4, async_stats = _best_real(_run_real_backend, "async", 4)
    real_speedup_mp4 = real_mp4 / real_sync if real_sync > 0 else 0.0
    real_speedup_async4 = (
        real_async4 / real_sync if real_sync > 0 else 0.0
    )
    real_rows = [
        ["sync (DirectExecutor)", f"{real_sync:,.0f}/s", "1.00x", "-"],
        ["mp @ 4", f"{real_mp4:,.0f}/s", f"{real_speedup_mp4:.2f}x",
         str(mp_stats.jobs_dispatched)],
        ["async @ 4", f"{real_async4:,.0f}/s",
         f"{real_speedup_async4:.2f}x",
         str(async_stats.jobs_dispatched)],
    ]

    report(
        "shard_scaleout",
        "Sharded fan-out scale-out (modeled parallelism; see module "
        "docstring)\n"
        + format_table(
            ["shards", "updates/s", "engine speedup", "merge share",
             "ops applied"],
            rows,
        )
        + f"\n\nshards=4 vs shards=1: {speedup_x4:.2f}x"
        + f"\nshards=8 vs shards=1: {speedup_x8:.2f}x"
        + "\n\nReal backends (measured wall-clock, encode memo off, "
        + f"{cpu_count} CPU core(s) on this runner)\n"
        + format_table(
            ["backend", "updates/s", "vs sync", "jobs dispatched"],
            real_rows,
        )
        + ("\n\nNote: real mp speedup tracks physical cores; the "
           "regression gate requires >= 1.8x only on >= 4 cores."),
    )
    report_json("shard_scaleout", {
        "shards1_updates_per_s": rates[1],
        "shards2_updates_per_s": rates[2],
        "shards4_updates_per_s": rates[4],
        "shards8_updates_per_s": rates[8],
        "speedup_x4": speedup_x4,
        "speedup_x8": speedup_x8,
        "ops_applied": stats[4].ops_applied,
        "cpu_count": cpu_count,
        "real_sync_updates_per_s": real_sync,
        "real_mp4_updates_per_s": real_mp4,
        "real_async4_updates_per_s": real_async4,
        "real_speedup_mp4": real_speedup_mp4,
        "real_speedup_async4": real_speedup_async4,
    })
    # Identical pipelines must apply identical op counts at every count.
    assert len({stat.ops_applied for stat in stats.values()}) == 1
    # The acceptance criterion: 4 shards sustain >= 1.5x the 1-shard rate.
    assert speedup_x4 >= 1.5, f"speedup at 4 shards only {speedup_x4:.2f}x"
    assert rates[1] > 0


if __name__ == "__main__":  # pragma: no cover - manual runs
    pytest.main([__file__, "-q"])
