"""§6's scalability claim, exercised end to end on a large IXP PoP.

"Our current software stack can be deployed at even the largest IXPs for
the foreseeable future on off-the-shelf servers." This bench builds one
IXP PoP with a route server fronting many members (the dominant AMS-IX
pattern: most peers are route-server-only), converges it, attaches an
experiment, and checks that the experiment sees every member's routes
with per-member next hops — then measures the whole thing.
"""


from benchmarks.reporting import format_table, report
from repro.internet.asnode import InternetAS
from repro.internet.ixp import attach_route_server, join_ixp_via_route_server
from repro.internet.overlay import AsOverlay
from repro.netsim.addr import IPv4Prefix
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient

MEMBERS = 100
PREFIXES_PER_MEMBER = 10


def test_large_ixp_pop(benchmark):
    def build_and_converge():
        scheduler = Scheduler()
        platform = PeeringPlatform(scheduler, pop_configs=[
            PopConfig(name="bigix", pop_id=0, kind="ixp"),
        ])
        pop = platform.pops["bigix"]
        server = attach_route_server(pop)
        overlay = AsOverlay(scheduler)
        supernets = IPv4Prefix.parse("32.0.0.0/6").subnets(16)
        for index in range(MEMBERS):
            member = InternetAS(
                scheduler, overlay, asn=20000 + index,
                name=f"member-{index}",
                prefixes=tuple(
                    next(supernets) for _ in range(PREFIXES_PER_MEMBER)
                ),
            )
            member.originate_all()
            join_ixp_via_route_server(member, pop, server)
        scheduler.run_for(60)
        platform.submit_proposal(ExperimentProposal(
            name="x", contact="t", goals="scale", execution_plan="watch",
        ))
        client = ExperimentClient(scheduler, "x", platform)
        client.openvpn_up("bigix")
        client.bird_start("bigix")
        scheduler.run_for(60)
        return scheduler, platform, pop, client

    scheduler, platform, pop, client = benchmark.pedantic(
        build_and_converge, rounds=1, iterations=1
    )
    expected_routes = MEMBERS * PREFIXES_PER_MEMBER
    view = client.pops["bigix"]
    known = len(pop.node.known_routes())
    fanned = len(view.routes)
    next_hops = {
        str(route.next_hop)
        for route in pop.node.upstreams["rs-bigix"].rib.values()
    }
    report(
        "scale_ixp",
        f"§6 scalability: one IXP PoP, {MEMBERS} route-server members, "
        f"{PREFIXES_PER_MEMBER} prefixes each\n"
        + format_table(
            ["metric", "value"],
            [
                ["routes known at the vBGP node", known],
                ["routes fanned out to the experiment", fanned],
                ["distinct member next hops preserved", len(next_hops)],
                ["kernel FIB entries", pop.node.fib_entry_count()],
            ],
        )
        + "\n(route-server transparency preserves per-member next hops, "
          "so experiments still steer traffic per member)",
    )
    assert known == expected_routes
    assert fanned == expected_routes
    assert len(next_hops) == MEMBERS  # transparency preserved per member
