"""§6g — full-table ingestion through the vBGP pipeline.

The paper's muxes carry full Internet routing tables (§4.1: "mux BGP
routers maintain full Internet routing tables"), and §6 shows the
platform absorbing them with modest CPU.  This bench replays a
~900k-prefix DFZ-shaped table (plus a churn tail) through a real vBGP
node fanning out to eight ADD-PATH experiment sessions, once with every
perf flag off (the reference pipeline) and once with every flag on
(stride LPM, batched fan-out, memoized encode, columnar Loc-RIB,
incremental best-path, zero-copy encode).

The acceptance criterion for the §6g engine: the all-on configuration
ingests the table at >=3x the reference's update rate.  The
differential harness proves the two legs byte-identical, so the ratio
is pure speedup, not behavior drift.

``FULLTABLE_PREFIXES`` / ``FULLTABLE_CHURN`` override the scale for
quick local runs (per-message rates are only mildly scale-dependent;
committed baselines use the defaults).
"""

import gc
import os
import time

from benchmarks.reporting import format_table, report, report_json
from repro import perf
from repro.bgp.session import BgpSession, SessionConfig
from repro.bgp.transport import connect_pair
from repro.conformance.differential import TOGGLES
from repro.internet.fulltable import FullTableGenerator
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry

PREFIXES = int(os.environ.get("FULLTABLE_PREFIXES", "900000"))
CHURN = int(os.environ.get("FULLTABLE_CHURN", "10000"))
EXPERIMENTS = 8
SEED = 20260807


def build_node():
    """A PoP with one upstream feed and eight experiment attachments."""
    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="ft", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    pop.provision_neighbor("upstream", 65010, kind="peer")
    for index in range(EXPERIMENTS):
        ours, theirs = connect_pair(scheduler, rtt=0.001)
        pop.node.attach_experiment(
            name=f"x{index}", asn=47065,
            prefixes=(IPv4Prefix.parse(f"184.164.{224 + index}.0/24"),),
            tunnel_ip=IPv4Address.parse(f"100.125.{index}.2"),
            tunnel_mac=MacAddress.parse(f"02:aa:00:00:00:{2 + index:02x}"),
            channel=ours,
        )
        client = BgpSession(
            scheduler,
            SessionConfig(local_asn=47065,
                          local_id=IPv4Address.parse(f"100.125.{index}.2"),
                          peer_asn=47065, addpath=True),
            theirs, on_update=lambda _s, _u: None,
        )
        client.start()
    scheduler.run_for(5)
    return scheduler, pop


def run_leg(all_off: bool):
    """One ingestion leg; returns (elapsed_s, messages, rib_size)."""
    flags = {name: False for name in TOGGLES} if all_off else {}
    perf.clear_caches()
    gc.collect()
    with perf.flags(**flags):
        scheduler, pop = build_node()
        generator = FullTableGenerator(prefix_count=PREFIXES, seed=SEED)
        updates = list(generator.table_updates())
        updates.extend(generator.churn(CHURN))
        start = time.perf_counter()
        for update in updates:
            pop.node._upstream_update("upstream", update)
            scheduler.run_until(scheduler.now)  # drain immediate events
        elapsed = time.perf_counter() - start
        rib_size = len(pop.node.upstreams["upstream"].rib)
    perf.clear_caches()
    gc.collect()
    return elapsed, len(updates), rib_size


def test_fulltable_ingest_speedup(benchmark):
    legs = benchmark.pedantic(
        lambda: (run_leg(all_off=True), run_leg(all_off=False)),
        rounds=1, iterations=1,
    )
    (off_s, messages, off_rib), (on_s, _, on_rib) = legs
    off_rate = messages / off_s
    on_rate = messages / on_s
    speedup = on_rate / off_rate
    prefixes_per_s = PREFIXES / on_s

    rows = [
        ["table prefixes", f"{PREFIXES:,}", "~900k (full DFZ table)"],
        ["churn-tail updates", f"{CHURN:,}", "—"],
        ["UPDATE messages", f"{messages:,}", "—"],
        ["all-off updates/s", f"{off_rate:,.0f}", "reference pipeline"],
        ["all-on updates/s", f"{on_rate:,.0f}", "§6g engine"],
        ["all-on table prefixes/s", f"{prefixes_per_s:,.0f}", "—"],
        ["speedup", f"{speedup:.2f}x", ">=3x (acceptance)"],
    ]
    report(
        "fulltable_load",
        "§6g full-table ingestion, vBGP pipeline with "
        f"{EXPERIMENTS}-experiment fan-out\n"
        + format_table(["metric", "measured", "target"], rows),
    )
    report_json("fulltable_load", {
        "prefixes": PREFIXES,
        "messages": messages,
        "all_off_updates_per_s": off_rate,
        "all_on_updates_per_s": on_rate,
        "all_on_prefixes_per_s": prefixes_per_s,
        "speedup_x": speedup,
    })

    # Both legs converged to the same upstream table (the differential
    # harness proves the full byte-level equivalence; this is the cheap
    # in-bench cross-check).
    assert off_rib == on_rib
    assert off_rib > 0
    assert speedup >= 3.0
