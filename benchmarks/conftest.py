"""Benchmark-suite conftest: echo regenerated tables in the summary."""

from __future__ import annotations

import pytest

from benchmarks.reporting import session_reports
from repro.sim import Scheduler


@pytest.fixture
def scheduler() -> Scheduler:
    return Scheduler()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    reports = session_reports()
    if not reports:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("regenerated paper tables & figures")
    for name, text in reports:
        terminalreporter.write_line(f"\n── {name} " + "─" * max(
            0, 66 - len(name)
        ))
        for line in text.splitlines():
            terminalreporter.write_line(line)
