"""Resilience — re-convergence time under injected faults (§4.7, §7.3).

The chaos harness breaks a converged two-PoP deployment in every way the
paper's operational sections describe (message loss, stream corruption,
latency spikes, partitions, session flapping, tunnel bounces, enforcer
overload), heals the fault, and measures how long the platform takes to
return to the exact pre-fault routing state.  The seeded soak sweeps
multiple RNG seeds; every (scenario, seed) pair must re-converge with
all resilience invariants intact.

Outputs ``BENCH_chaos_convergence.json`` with per-scenario worst-case
and mean convergence times so CI can diff runs.
"""

from collections import defaultdict

from benchmarks.reporting import format_table, report, report_json
from repro.chaos import ChaosRunner, build_chaos_world

SEEDS = (0, 1, 2, 3, 4)


def test_chaos_convergence_soak():
    times = defaultdict(list)
    failures = []
    details = defaultdict(float)
    for seed in SEEDS:
        world = build_chaos_world(seed=seed)
        runner = ChaosRunner(world)
        for result in runner.run_all():
            times[result.name].append(result.convergence_time)
            details[f"{result.name}_reconnects"] += result.details.get(
                "reconnects", 0.0
            )
            if not result.ok:
                failures.append(result.format())
    assert not failures, "\n".join(failures)

    rows = []
    metrics = {"seeds": len(SEEDS), "scenarios": len(times)}
    for name in sorted(times):
        samples = times[name]
        worst = max(samples)
        mean = sum(samples) / len(samples)
        rows.append([name, len(samples), f"{mean:.1f}", f"{worst:.1f}"])
        metrics[f"{name}_mean_s"] = round(mean, 3)
        metrics[f"{name}_worst_s"] = round(worst, 3)
        metrics[f"{name}_reconnects"] = details[f"{name}_reconnects"]

    report("chaos_convergence", "\n".join([
        f"Seeded chaos soak: {len(SEEDS)} seeds x {len(times)} scenarios, "
        "all re-converged (simulated seconds after heal)",
        format_table(
            ["scenario", "runs", "mean conv (s)", "worst conv (s)"], rows
        ),
    ]))
    report_json("chaos_convergence", metrics)
