"""Ablation (§3.3) — decoupled enforcement vs in-router filters.

The paper decouples security enforcement from the routing engine because
router filter languages cannot express the platform's policies and are
hard to test. This ablation (a) classifies each §4.7 policy by whether
the router filter language of :mod:`repro.router.configlang` can express
it, and (b) measures the per-route cost of the expressible subset in the
router's policy engine vs the full decoupled pipeline — quantifying what
the flexibility costs.
"""


from benchmarks.reporting import format_table, report
from repro.bgp.attributes import Community, local_route
from repro.metrics import measure_processing
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.router import parse_config
from repro.security import ControlPlaneEnforcer, ExperimentProfile
from repro.sim import Scheduler

ALLOCATION = IPv4Prefix.parse("184.164.224.0/23")
NH = IPv4Address.parse("100.125.0.2")

POLICIES = [
    ("prefix ownership (allocation only)", True),
    ("origin-ASN authorization", True),
    ("AS-path length bound", True),
    ("community stripping", True),
    ("per-capability gating (per-experiment)", False),
    ("144 updates/day per prefix+PoP (stateful)", False),
    ("cross-PoP AS-wide budgets (synchronized state)", False),
    ("fail-closed on engine overload", False),
    ("violation logging for attribution", False),
]

ROUTER_FILTER = """
router id 10.0.0.1;
local as 47065;
filter experiment_in {
    if net ~ 184.164.224.0/23+ then {
        strip communities;
        accept;
    }
    reject;
}
"""


def test_ablation_enforcement(benchmark):
    scheduler = Scheduler()
    config = parse_config(ROUTER_FILTER)
    router_filter = config.filters["experiment_in"].route_map
    enforcer = ControlPlaneEnforcer(
        scheduler, platform_asns=frozenset({47065})
    )
    enforcer.register_experiment(ExperimentProfile(
        name="probe", asns=frozenset({47065}), prefixes=(ALLOCATION,)
    ))
    routes = [
        local_route(prefix, next_hop=NH).add_communities(
            Community(3356, index % 100)
        )
        for index, prefix in enumerate(ALLOCATION.subnets(24))
    ] * 500  # 1000 route evaluations

    def run_both():
        in_router = measure_processing(
            "router-filter", router_filter.apply, routes
        )
        decoupled = measure_processing(
            "decoupled-engine",
            lambda route: enforcer.check_routes("probe", [route], "pop"),
            routes,
        )
        return in_router, decoupled

    in_router, decoupled = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    expressible = sum(1 for _p, ok in POLICIES if ok)
    rows = [[label, "router filter" if ok else "decoupled engine only"]
            for label, ok in POLICIES]
    overhead = decoupled.seconds_per_update / in_router.seconds_per_update
    report(
        "ablation_enforcement",
        "Ablation: §4.7 policies vs where they can be enforced\n"
        + format_table(["policy", "expressible in"], rows)
        + "\n\nper-route cost: router filter "
          f"{in_router.seconds_per_update * 1e6:.1f} µs, decoupled engine "
          f"{decoupled.seconds_per_update * 1e6:.1f} µs "
          f"({overhead:.1f}x)"
        + f"\n{expressible}/{len(POLICIES)} policies fit a router filter "
          "language — the stateful/cross-PoP/fail-closed policies that "
          "motivate decoupling (§3.3) do not."
        + "\n(The paper keeps the cheap subset in BIRD and the rest in "
          "the ExaBGP engine — exactly this split.)",
    )
    assert expressible < len(POLICIES)
    # The decoupled engine's flexibility costs a small constant factor,
    # not an order of magnitude per route.
    assert overhead < 25
