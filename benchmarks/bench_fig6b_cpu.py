"""Figure 6b — CPU utilization vs rate of BGP updates.

Three configurations, as in the paper:

* *accept*: decode the UPDATE and store its routes — no checks (the lower
  bound on per-update cost),
* *single-router vBGP*: the full experiment-announcement filter chain
  (prefix ownership, origin, path sanity, attribute policing, rate
  accounting) — a worst case, since in deployment most updates come from
  the Internet and see much simpler filters,
* *multi-router vBGP*: the backbone-mesh configuration's additional
  next-hop handling (global-IP rewrite + path-id allocation + re-encode).

Per-update cost is measured over real UPDATE processing and converted to
utilization of one core at the paper's rates. The shape claims we verify:
linearity in the rate, ordering accept ≤ single ≤ multi, safety filters
not dominating, and the AMS-IX load (21.8 avg / 400 p99 updates/s)
leaving ample headroom.
"""

import pytest

from benchmarks.reporting import format_table, report, report_json
from repro.bgp.messages import MessageDecoder
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.metrics import measure_processing
from repro.netsim.addr import IPv4Prefix
from repro.security import ControlPlaneEnforcer, ExperimentProfile
from repro.sim import Scheduler
from repro.vbgp.allocator import LocalVipAllocator, global_neighbor_ip

RATES = [500, 1000, 2000, 4000]
UPDATE_COUNT = 3000


@pytest.fixture(scope="module")
def wire_updates():
    """Churn updates, wire-encoded (processing includes decode)."""
    generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=2000, seed=23)
    return [update.encode() for update in generator.make_updates(
        UPDATE_COUNT
    )]


def accept_pipeline():
    store = {}

    def process(data: bytes):
        decoder = MessageDecoder()
        decoder.feed(data)
        update = decoder.next_message()
        for route in update.routes():
            store[route.prefix] = route
        for prefix, _pid in update.withdrawn:
            store.pop(prefix, None)

    return process


def single_router_pipeline():
    scheduler = Scheduler()
    enforcer = ControlPlaneEnforcer(
        scheduler, platform_asns=frozenset({47065}),
    )
    # A permissive experiment so filters run to completion without
    # rejecting (the paper's stated worst case): transit + communities
    # capabilities make foreign paths and attributes acceptable.
    enforcer.register_experiment(ExperimentProfile(
        name="bench",
        asns=frozenset({47065}),
        prefixes=(IPv4Prefix.parse("0.0.0.0/0"),),
        max_announced_length=32,
        max_as_path_length=64,
    ))
    from repro.security.capabilities import Capability

    enforcer.profiles["bench"].grant(Capability.PREFIX_TRANSIT, None)
    enforcer.profiles["bench"].grant(Capability.BGP_COMMUNITIES, None)
    store = {}

    def process(data: bytes):
        decoder = MessageDecoder()
        decoder.feed(data)
        update = decoder.next_message()
        routes = update.routes()
        if routes:
            accepted = enforcer.check_routes("bench", routes, "bench-pop")
            for route in accepted.accepted:
                store[route.prefix] = route
        for prefix, _pid in update.withdrawn:
            store.pop(prefix, None)

    return process


def multi_router_pipeline():
    single = single_router_pipeline()
    vips = LocalVipAllocator()
    path_ids = {}
    counter = [0]

    def process(data: bytes):
        single(data)
        # Backbone next-hop handling: rewrite to the global pool address,
        # allocate a stable path id, and re-encode for the mesh.
        decoder = MessageDecoder()
        decoder.feed(data)
        update = decoder.next_message()
        gid = (counter[0] % 200) + 1
        counter[0] += 1
        for route in update.routes():
            carried = route.with_next_hop(global_neighbor_ip(gid))
            key = (gid, route.prefix.key())
            if key not in path_ids:
                path_ids[key] = len(path_ids) + 1
            carried = carried.with_path_id(path_ids[key])
            vips.vip_for(gid)
            from repro.bgp.messages import UpdateMessage

            UpdateMessage.announce([carried]).encode(addpath=True)

    return process


def test_fig6b_cpu_series(wire_updates, benchmark):
    measurements = {}
    pipelines = {
        "accept": accept_pipeline(),
        "single-router vBGP": single_router_pipeline(),
        "multi-router vBGP": multi_router_pipeline(),
    }

    def run_all():
        return {
            label: measure_processing(label, pipeline, wire_updates)
            for label, pipeline in pipelines.items()
        }

    measurements = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for rate in RATES:
        rows.append([rate] + [
            f"{measurements[label].utilization(rate):.1f}%"
            for label in pipelines
        ])
    sustainable = {
        label: measurements[label].max_sustainable_rate()
        for label in pipelines
    }
    text = (
        "Figure 6b: CPU utilization (one core) vs update rate\n"
        + format_table(["updates/s"] + list(pipelines), rows)
        + "\n\nmax sustainable rates: "
        + ", ".join(f"{label} {rate:,.0f}/s"
                    for label, rate in sustainable.items())
        + "\nAMS-IX load (§6): 21.8 avg / ~400 p99 updates/s -> "
        + f"{measurements['multi-router vBGP'].utilization(400):.1f}% "
          "worst-case utilization at the p99"
    )
    report("fig6b_cpu", text)
    report_json("fig6b_cpu", {
        "accept_updates_per_s": sustainable["accept"],
        "single_router_updates_per_s": sustainable["single-router vBGP"],
        "multi_router_updates_per_s": sustainable["multi-router vBGP"],
        "multi_router_utilization_at_p99_pct": (
            measurements["multi-router vBGP"].utilization(400)
        ),
    })

    accept = measurements["accept"]
    single = measurements["single-router vBGP"]
    multi = measurements["multi-router vBGP"]
    # Ordering and linearity (the paper's qualitative claims).
    assert accept.seconds_per_update <= single.seconds_per_update
    assert single.seconds_per_update <= multi.seconds_per_update
    assert single.utilization(2000) == pytest.approx(
        2 * single.utilization(1000), rel=0.01
    )
    # Safety filters must not dominate: within ~8x of the accept floor
    # (the paper's figure shows roughly 1.5-2x; Python amplifies constant
    # factors but the claim is that filtering stays same-order).
    assert single.seconds_per_update < 8 * accept.seconds_per_update
    # The AMS-IX p99 load leaves headroom on one core.
    assert multi.utilization(400) < 100


def test_fig6b_single_router_throughput(wire_updates, benchmark):
    """pytest-benchmark timing of the single-router filter pipeline."""
    pipeline = single_router_pipeline()
    sample = wire_updates[:500]

    def run():
        for data in sample:
            pipeline(data)

    benchmark(run)
