"""§4.2 — footprint and connectivity.

Regenerates the paper's deployment numbers: 13 PoPs (4 IXP + 9
university), 8 ASNs (three 4-byte), 40 IPv4 /24s + one IPv6 /32, a mix
of bilateral and route-server peers, and the PeeringDB classification of
peers (33% transit, 28% cable/DSL/ISP, 23% content, …).
"""


from benchmarks.reporting import format_table, report, report_json
from repro.internet import (
    InternetConfig,
    NetworkType,
    build_internet,
    classify_peers,
    synthesize_records,
)
from repro.platform import PeeringPlatform
from repro.platform.resources import (
    PLATFORM_ASNS,
    default_prefix_allocations,
)
from repro.sim import Scheduler


def test_footprint_and_connectivity(benchmark):
    def build():
        scheduler = Scheduler()
        platform = PeeringPlatform(scheduler)
        internet = build_internet(
            scheduler, platform,
            InternetConfig(n_tier1=3, n_transit=6, n_stub=20,
                           ixp_members_per_ixp=10,
                           bilateral_fraction=0.3),
        )
        scheduler.run_for(40)
        return platform, internet

    platform, internet = benchmark.pedantic(build, rounds=1, iterations=1)

    pops = list(platform.pops.values())
    ixps = [p for p in pops if p.config.kind == "ixp"]
    universities = [p for p in pops if p.config.kind == "university"]
    four_byte = sum(1 for asn in PLATFORM_ASNS if asn >= (1 << 16))
    bilateral = len(internet.bilateral_peers)
    rs_only = len(internet.rs_only_peers)
    total_peers = bilateral + rs_only
    transit_links = len(internet.transit_gids)

    rows = [
        ["PoPs", len(pops), "13"],
        ["  at IXPs", len(ixps), "4"],
        ["  at universities", len(universities), "9"],
        ["ASNs", len(PLATFORM_ASNS), "8"],
        ["  4-byte ASNs", four_byte, "3"],
        ["IPv4 /24 prefixes", len(default_prefix_allocations()), "40"],
        ["IPv6 allocation", "2804:269c::/32 (one /32)", "one /32"],
        ["transit interconnections", transit_links, "12"],
        ["unique peers", total_peers, "923 (scaled topology)"],
        ["  bilateral sessions", bilateral, "129 (scaled)"],
        ["  via route servers only", rs_only, "794 (scaled)"],
    ]
    # PeeringDB classification at the platform's synthetic-peer scale
    # mirrors the §4.2 percentages by construction — regenerate at scale
    # so the distribution is statistically visible.
    records = synthesize_records(range(1, 924))
    mix = classify_peers(records, records.keys())
    mix_rows = [
        ["transit providers", f"{mix[NetworkType.TRANSIT] * 100:.0f}%", "33%"],
        ["cable/DSL/ISP", f"{mix[NetworkType.CABLE_DSL_ISP] * 100:.0f}%",
         "28%"],
        ["content providers", f"{mix[NetworkType.CONTENT] * 100:.0f}%",
         "23%"],
        ["unclassifiable", f"{mix[NetworkType.UNCLASSIFIED] * 100:.0f}%",
         "8%"],
    ]
    report(
        "footprint",
        "§4.2 footprint & connectivity\n"
        + format_table(["resource", "measured", "paper"], rows)
        + "\n\nPeeringDB classification of 923 synthesized peers:\n"
        + format_table(["network type", "measured", "paper"], mix_rows),
    )

    report_json("footprint", {
        "pops": len(pops),
        "asns": len(PLATFORM_ASNS),
        "prefixes_v4": len(default_prefix_allocations()),
        "transit_links": transit_links,
        "bilateral_peers": bilateral,
        "rs_only_peers": rs_only,
    })

    assert len(pops) == 13 and len(ixps) == 4 and len(universities) == 9
    assert len(PLATFORM_ASNS) == 8 and four_byte == 3
    assert len(default_prefix_allocations()) == 40
    assert bilateral > 0 and rs_only > 0
    assert rs_only > bilateral * 0.5  # route servers carry most peers
    assert abs(mix[NetworkType.TRANSIT] - 0.33) < 0.05
    assert abs(mix[NetworkType.CABLE_DSL_ISP] - 0.28) < 0.05
    assert abs(mix[NetworkType.CONTENT] - 0.23) < 0.05
