"""Figure 6a — memory consumption vs number of known routes.

The paper's series (all linear in the route count):

* *control plane*: a single global RIB — ≈327 B/route in BIRD,
* *per-interconnection data plane*: + one kernel FIB entry per route,
* *per-interconnection data plane w/ default*: + a synchronized default
  table.

We regenerate the series by building realistic routes (AS paths and
communities drawn from the churn generator's distribution) and walking
the actual data structures with the calibrated byte model, then check the
paper's headline claims: ≈327 B/route, linearity, a 32 GiB server fitting
100 M routes, and AMS-IX's 2.7 M routes fitting comfortably.
"""

import pytest

from benchmarks.reporting import format_table, report, report_json
from repro.internet.churn import AMSIX_PROFILE, ChurnGenerator
from repro.metrics import memory_report, rib_memory

ROUTE_COUNTS = [50_000, 100_000, 200_000, 400_000]


def build_routes(count: int):
    generator = ChurnGenerator(AMSIX_PROFILE, prefix_count=count, seed=11)
    routes = []
    while len(routes) < count:
        update = generator.make_update()
        routes.extend(update.routes())
    return routes[:count]


@pytest.fixture(scope="module")
def route_sets():
    return {count: build_routes(count) for count in ROUTE_COUNTS}


def test_fig6a_memory_series(route_sets, benchmark):
    reports = benchmark.pedantic(
        lambda: {
            count: memory_report(routes)
            for count, routes in route_sets.items()
        },
        rounds=1, iterations=1,
    )
    rows = []
    for count in ROUTE_COUNTS:
        control, data, default = reports[count].as_megabytes()
        rows.append([
            f"{count // 1000}k",
            f"{control:.1f}",
            f"{data:.1f}",
            f"{default:.1f}",
        ])
    per_route = (
        reports[ROUTE_COUNTS[-1]].control_plane / ROUTE_COUNTS[-1]
    )
    amsix_gb = per_route * 2_700_000 / (1 << 30)
    hundred_m_gb = per_route * 100_000_000 / (1 << 30)
    text = (
        "Figure 6a: memory (MB) vs known routes\n"
        + format_table(
            ["routes", "control-plane", "data-plane", "dp w/ default"],
            rows,
        )
        + f"\n\ncontrol-plane bytes/route: {per_route:.0f}"
          "   (paper: ~327 B/route)"
        + f"\nAMS-IX 2.7M routes -> {amsix_gb:.2f} GiB control-plane RAM"
        + f"\n100M routes control-plane -> {hundred_m_gb:.1f} GiB"
          "   (paper: a 32 GiB server supports 100M routes)"
    )
    report("fig6a_memory", text)
    largest = reports[ROUTE_COUNTS[-1]]
    report_json("fig6a_memory", {
        "routes": ROUTE_COUNTS[-1],
        "control_bytes_per_route": per_route,
        "data_plane_bytes_per_route":
            largest.data_plane / ROUTE_COUNTS[-1],
        "dp_with_default_bytes_per_route":
            largest.data_plane_with_default / ROUTE_COUNTS[-1],
    })
    assert hundred_m_gb < 32

    # Shape assertions: calibration, ordering, linearity.
    assert 300 <= per_route <= 360
    for count in ROUTE_COUNTS:
        r = reports[count]
        assert r.control_plane < r.data_plane < r.data_plane_with_default
    small = reports[ROUTE_COUNTS[0]].control_plane / ROUTE_COUNTS[0]
    large = per_route
    assert abs(small - large) / large < 0.05  # linear: constant slope


def test_fig6a_rib_memory_throughput(route_sets, benchmark):
    """How fast the accounting walks a 100k-route RIB (harness cost)."""
    routes = route_sets[100_000]
    total = benchmark(lambda: rib_memory(routes))
    assert total > 0
