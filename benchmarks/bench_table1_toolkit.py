"""Table 1 — the experiment toolkit's functionality, exercised end to end.

Every row of the paper's Table 1 is executed through the ``peering`` CLI
against a live platform and marked OK only when the observable effect
(tunnel state, session state, exported route, attribute change) is
verified — not merely that the command returned.
"""

import pytest

from benchmarks.reporting import format_table, report
from repro.bgp.attributes import Community
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import (
    CapabilityRequest,
    ExperimentProposal,
)
from repro.security.capabilities import Capability
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient, ToolkitCli


@pytest.fixture(scope="module")
def table1_world():
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="pop-a", pop_id=0, kind="university", backbone=True),
        PopConfig(name="pop-b", pop_id=1, kind="university", backbone=True),
    ])
    pop = platform.pops["pop-a"]
    port = pop.provision_neighbor("observer", 65010, kind="transit")
    observer = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65010, router_id=port.address)
    )
    observer.attach_neighbor(
        NeighborConfig(name="to-pop", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    platform.submit_proposal(ExperimentProposal(
        name="table1", contact="t", goals="exercise the toolkit",
        execution_plan="run every Table 1 row",
        capability_requests=[
            CapabilityRequest(Capability.BGP_COMMUNITIES, limit=4),
            CapabilityRequest(Capability.AS_PATH_POISONING, limit=2),
        ],
    ))
    client = ExperimentClient(scheduler, "table1", platform)
    return scheduler, platform, observer, client, ToolkitCli(client)


def test_table1_functionality(table1_world, benchmark):
    scheduler, platform, observer, client, cli = table1_world
    prefix = client.profile.prefixes[0]
    rows = []

    def check(category, functionality, passed):
        rows.append([category, functionality, "OK" if passed else "FAIL"])
        assert passed, f"Table 1 row failed: {functionality}"

    def run_table():
        # --- OpenVPN ---------------------------------------------------
        out = cli.run("peering openvpn up pop-a")
        cli.run("peering openvpn up pop-b")
        check("OpenVPN", "Open tunnels", "up" in out)
        status = cli.run("peering openvpn status")
        check("OpenVPN", "Check status of tunnels",
              "pop-a: up" in status and "pop-b: up" in status)
        cli.run("peering openvpn down pop-b")
        status = cli.run("peering openvpn status")
        check("OpenVPN", "Close tunnels", "pop-b" not in status)
        cli.run("peering openvpn up pop-b")

        # --- BGP/BIRD ---------------------------------------------------
        cli.run("peering bgp start pop-a")
        cli.run("peering bgp start pop-b")
        scheduler.run_for(5)
        status = cli.run("peering bgp status")
        check("BGP/BIRD", "Start BIRD sessions",
              status.count("established") == 2)
        cli.run("peering bgp stop pop-b")
        scheduler.run_for(2)
        check("BGP/BIRD", "Stop BIRD sessions",
              "pop-b: down" in cli.run("peering bgp status"))
        cli.run("peering bgp start pop-b")
        scheduler.run_for(5)
        check("BGP/BIRD", "Status of BGP connections",
              cli.run("peering bgp status").count("established") == 2)
        check("BGP/BIRD", "Access BIRD CLI",
              "bgp" in cli.run("peering bird pop-a show protocols"))

        # --- Prefix management -------------------------------------------
        cli.run(f"peering prefix announce {prefix}")
        scheduler.run_for(5)
        check("Prefix", "Announce prefix",
              observer.best_route(prefix) is not None)
        cli.run(f"peering prefix withdraw {prefix}")
        scheduler.run_for(5)
        check("Prefix", "Withdraw prefix",
              observer.best_route(prefix) is None)
        cli.run(f"peering prefix announce {prefix} -c 3356:70")
        scheduler.run_for(5)
        best = observer.best_route(prefix)
        check("Prefix", "Manipulate community attribute",
              best is not None and Community(3356, 70) in best.communities)
        cli.run(f"peering prefix withdraw {prefix}")
        scheduler.run_for(5)
        cli.run(f"peering prefix announce {prefix} -p 3 -x 3356")
        scheduler.run_for(5)
        best = observer.best_route(prefix)
        check("Prefix", "Manipulate the AS-path attribute",
              best is not None and 3356 in best.as_path.asns
              and best.as_path.asns.count(47065) >= 3)
        cli.run(f"peering prefix withdraw {prefix}")
        scheduler.run_for(5)
        return rows

    benchmark.pedantic(run_table, rounds=1, iterations=1)
    report(
        "table1_toolkit",
        "Table 1: toolkit functionality, executed and verified\n"
        + format_table(["category", "functionality", "result"], rows),
    )
