"""Figure 2 / §3.2 — delegation mechanics, measured.

Beyond the functional walkthrough in the tests, this benchmark measures
the vBGP mechanisms themselves:

* control-plane fan-out cost: routes/second rewritten (next hop → local
  virtual IP, ADD-PATH id allocation, re-encode) into an experiment
  session,
* data-plane demultiplexing cost: packets/second through the
  dMAC-keyed table selection + per-neighbor LPM + forwarding path,
* a scenario check that every Figure 2 artifact is in place.
"""

import pytest

from benchmarks.reporting import format_table, report, report_json
from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.frames import (
    EtherType,
    EthernetFrame,
    IpProto,
    IPv4Packet,
    UdpDatagram,
)
from repro.platform.pop import PointOfPresence, PopConfig
from repro.security.state import EnforcerState
from repro.sim import Scheduler
from repro.vbgp.allocator import GlobalNeighborRegistry

DEST = IPv4Prefix.parse("192.168.0.0/24")


@pytest.fixture(scope="module")
def delegation_pop():
    scheduler = Scheduler()
    pop = PointOfPresence(
        scheduler,
        PopConfig(name="e1", pop_id=0, kind="ixp"),
        platform_asn=47065,
        platform_asns=frozenset({47065}),
        registry=GlobalNeighborRegistry(),
        enforcer_state=EnforcerState(),
    )
    speakers = {}
    for name, asn in (("n1", 65010), ("n2", 65020)):
        port = pop.provision_neighbor(name, asn, kind="peer")
        speaker = BgpSpeaker(
            scheduler, SpeakerConfig(asn=asn, router_id=port.address)
        )
        speaker.attach_neighbor(
            NeighborConfig(name="to-e1", peer_asn=None,
                           local_address=port.address),
            port.channel,
        )
        speakers[name] = (speaker, port)
    from repro.bgp.session import BgpSession, SessionConfig
    from repro.bgp.transport import connect_pair

    ours, theirs = connect_pair(scheduler, rtt=0.001)
    pop.node.attach_experiment(
        name="x1", asn=47065,
        prefixes=(IPv4Prefix.parse("184.164.224.0/24"),),
        tunnel_ip=IPv4Address.parse("100.125.0.2"),
        tunnel_mac=MacAddress.parse("02:aa:00:00:00:02"),
        channel=ours,
    )
    received = []
    client = BgpSession(
        scheduler,
        SessionConfig(local_asn=47065,
                      local_id=IPv4Address.parse("100.125.0.2"),
                      peer_asn=47065, addpath=True),
        theirs,
        on_update=lambda _s, update: received.append(update),
    )
    client.start()
    scheduler.run_for(5)
    return scheduler, pop, speakers, received


def test_control_plane_fanout_rate(delegation_pop, benchmark):
    scheduler, pop, speakers, received = delegation_pop
    speaker, _port = speakers["n1"]
    prefixes = list(IPv4Prefix.parse("70.0.0.0/8").subnets(24))[:2000]

    def announce_batch():
        for prefix in prefixes:
            speaker.originate(local_route(
                prefix, next_hop=speaker.config.router_id
            ))
        scheduler.run_for(5)
        count = len(received)
        for prefix in prefixes:
            speaker.withdraw(prefix)
        scheduler.run_for(5)
        return count

    fanned_out = benchmark.pedantic(announce_batch, rounds=1, iterations=1)
    assert fanned_out >= len(prefixes)


def test_data_plane_demux_rate(delegation_pop, benchmark):
    scheduler, pop, speakers, _received = delegation_pop
    n2_speaker, n2_port = speakers["n2"]
    n2_speaker.originate(local_route(DEST, next_hop=n2_port.address))
    scheduler.run_for(5)
    virtual = pop.node.upstreams["n2"].virtual
    exp_iface = pop.stack.interfaces["exp0"]
    packet = IPv4Packet(
        src=IPv4Address.parse("184.164.224.1"),
        dst=DEST.address_at(1),
        proto=IpProto.UDP,
        payload=UdpDatagram(1, 9),
    )
    frame = EthernetFrame(
        src=MacAddress.parse("02:aa:00:00:00:02"),
        dst=virtual.mac,  # the experiment's routing decision, in the dMAC
        ethertype=EtherType.IPV4,
        payload=packet,
    )
    before = pop.stack.counters["forwarded"]

    def push_packets():
        for _ in range(500):
            exp_iface.port._handler(frame, exp_iface.port)
        scheduler.run_for(1)

    benchmark(push_packets)
    assert pop.stack.counters["forwarded"] > before

    import time

    start = time.perf_counter()
    push_packets()
    per_packet = (time.perf_counter() - start) / 500
    report(
        "fig2_delegation",
        "Figure 2 mechanics, measured\n"
        + format_table(
            ["mechanism", "measured"],
            [
                ["dMAC demux + per-neighbor LPM + forward",
                 f"{1 / per_packet:,.0f} packets/s (one core)"],
                ["per-packet cost", f"{per_packet * 1e6:.1f} µs"],
                ["per-neighbor tables at the node",
                 str(sum(1 for t in pop.stack.tables if t >= 1000))],
                ["proxy-ARP virtual IPs",
                 str(len(pop.stack.proxy_arp['exp0']))],
            ],
        )
        + "\n(the paper leaves kernel-bypass optimizations as future "
          "work; §6 notes no experiment has needed them)",
    )
    report_json("fig2_delegation", {
        "packets_per_s": 1 / per_packet,
        "per_packet_us": per_packet * 1e6,
    })
