"""Result reporting for the evaluation benchmarks.

Every benchmark regenerates one of the paper's tables/figures and calls
:func:`report` with the rows/series. Reports are written to
``benchmarks/results/<name>.txt`` and echoed in pytest's terminal summary
(see ``benchmarks/conftest.py``), so ``pytest benchmarks/
--benchmark-only`` shows both pytest-benchmark timings and the
paper-shaped outputs.
"""

from __future__ import annotations

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
# Machine-readable BENCH_<name>.json files land at the repo root so CI and
# the perf-regression driver can diff them across revisions.
REPO_ROOT = pathlib.Path(__file__).parent.parent

_session_reports: list[tuple[str, str]] = []


def report(name: str, text: str) -> None:
    """Record one experiment's regenerated table/series."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    _session_reports.append((name, text))


def report_json(name: str, metrics: dict) -> pathlib.Path:
    """Write machine-readable metrics to ``BENCH_<name>.json``.

    Schema: ``{"name": ..., "metrics": {...}, "timestamp": ...}`` with
    scalar metric values (numbers/strings), so downstream tooling can diff
    runs without parsing the human-readable tables.
    """
    payload = {
        "name": name,
        "metrics": metrics,
        "timestamp": time.time(),
    }
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def session_reports() -> list[tuple[str, str]]:
    return list(_session_reports)


def format_table(headers: list[str], rows: list[list]) -> str:
    """Fixed-width table formatting for report output."""
    columns = [
        [str(header)] + [str(row[index]) for row in rows]
        for index, header in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(
            str(cell).ljust(width) for cell, width in zip(row, widths)
        ))
    return "\n".join(lines)
