"""§4.7 — the security-policy capability matrix, regenerated as a table.

For each capability: an experiment exercising it is deployed twice (with
and without the grant) in the §5 test environment, and the routes that
actually reach a neighbor are compared. Also measures the enforcement
engine's filtering throughput (it must keep up with experiment
announcement load with margin, since it fails closed under overload).
"""


from benchmarks.reporting import format_table, report, report_json
from repro.bgp.attributes import (
    Community,
    LargeCommunity,
    UnknownAttribute,
    local_route,
    originate,
)
from repro.netsim.addr import IPv4Address, IPv4Prefix
from repro.security import (
    Capability,
    ControlPlaneEnforcer,
    ExperimentProfile,
)
from repro.sim import Scheduler

ALLOCATION = IPv4Prefix.parse("184.164.224.0/23")
NH = IPv4Address.parse("100.125.0.2")


def fresh_enforcer(grants=()):
    scheduler = Scheduler()
    enforcer = ControlPlaneEnforcer(
        scheduler, platform_asns=frozenset({47065})
    )
    profile = ExperimentProfile(
        name="probe", asns=frozenset({47065}), prefixes=(ALLOCATION,)
    )
    for capability, limit in grants:
        profile.grant(capability, limit)
    enforcer.register_experiment(profile)
    return enforcer


def outcome_of(enforcer, route):
    accepted = enforcer.filter_routes("probe", [route], "pop")
    if not accepted:
        return "blocked"
    result = accepted[0]
    if result != route:
        return "stripped"
    return "exported"


CASES = [
    (
        "BGP communities",
        (Capability.BGP_COMMUNITIES, 4),
        lambda: local_route(
            IPv4Prefix.parse("184.164.224.0/24"), next_hop=NH
        ).add_communities(Community(3356, 70)),
        "stripped", "exported",
    ),
    (
        "large communities",
        (Capability.LARGE_COMMUNITIES, 4),
        lambda: local_route(
            IPv4Prefix.parse("184.164.224.0/24"), next_hop=NH
        ).with_attributes(
            large_communities=frozenset({LargeCommunity(47065, 1, 2)})
        ),
        "stripped", "exported",
    ),
    (
        "AS-path poisoning",
        (Capability.AS_PATH_POISONING, 2),
        lambda: originate(
            IPv4Prefix.parse("184.164.224.0/24"), 47065, NH
        ).with_attributes(
            as_path=originate(
                IPv4Prefix.parse("184.164.224.0/24"), 47065, NH
            ).as_path.prepended(3356).prepended(47065)
        ),
        "blocked", "exported",
    ),
    (
        "transitive attributes",
        (Capability.TRANSITIVE_ATTRIBUTES, None),
        lambda: local_route(
            IPv4Prefix.parse("184.164.224.0/24"), next_hop=NH
        ).with_attributes(unknown=(
            UnknownAttribute(type_code=99, flags=0xC0, value=b"x"),
        )),
        "stripped", "exported",
    ),
    (
        "prefix transit",
        (Capability.PREFIX_TRANSIT, None),
        lambda: originate(
            IPv4Prefix.parse("184.164.224.0/24"), 20001, NH
        ).prepended(1000),
        "blocked", "exported",
    ),
]


def test_security_capability_matrix(benchmark):
    def run_matrix():
        rows = []
        for label, grant, make_route, expect_without, expect_with in CASES:
            without = outcome_of(fresh_enforcer(), make_route())
            granted = outcome_of(fresh_enforcer([grant]), make_route())
            rows.append([
                label, without, granted,
                "OK" if (without, granted) == (
                    expect_without, expect_with
                ) else "MISMATCH",
            ])
        # Non-capability policies, for completeness of §4.7's table.
        hijack = local_route(IPv4Prefix.parse("8.8.8.0/24"), next_hop=NH)
        rows.append([
            "hijack (foreign prefix)",
            outcome_of(fresh_enforcer(), hijack),
            outcome_of(fresh_enforcer(
                [(Capability.PREFIX_TRANSIT, None)]
            ), hijack),
            "OK",
        ])
        return rows

    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report(
        "security_matrix",
        "§4.7 capability matrix (route disposition at the enforcer)\n"
        + format_table(
            ["capability under test", "without grant", "with grant",
             "matches policy"],
            rows,
        ),
    )
    report_json("security_matrix", {
        "cases": len(rows),
        "matching_policy": sum(1 for row in rows if row[-1] == "OK"),
        **{
            f"{row[0]}": f"{row[1]}->{row[2]}"
            for row in rows
        },
    })
    assert all(row[-1] == "OK" for row in rows)
    # Hijacks are blocked regardless of any grant.
    assert rows[-1][1] == "blocked" and rows[-1][2] == "blocked"


def test_enforcer_filter_throughput(benchmark):
    """Routes/second through the full filter chain."""
    enforcer = fresh_enforcer([(Capability.BGP_COMMUNITIES, 4)])
    routes = [
        local_route(prefix, next_hop=NH).add_communities(
            Community(3356, index % 100)
        )
        for index, prefix in enumerate(ALLOCATION.subnets(24))
    ]

    def run():
        for route in routes:
            enforcer.check_routes("probe", [route], "pop")

    benchmark(run)

    import time as _time

    start = _time.perf_counter()
    run()
    elapsed = _time.perf_counter() - start
    report_json("security_enforcer_throughput", {
        "routes": len(routes),
        "seconds": elapsed,
        "routes_per_second": len(routes) / elapsed if elapsed else 0.0,
    })
