"""Figure 5 / §4.4 — vBGP across the backbone, measured.

Scenario: experiment at E1, neighbor N2 at E2. Verifies and times the
hop-by-hop next-hop-rewrite chain: the route as announced by N2, carried
on the mesh with the neighbor's *global* 127.127/16 IP, delivered to the
experiment with an E1-*local* 127.65/16 IP — and the data-plane path
E1 → backbone → E2 → N2 keyed entirely by the deterministic virtual MAC.
"""

import pytest

from benchmarks.reporting import format_table, report, report_json
from repro.bgp.attributes import local_route
from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
from repro.netsim.addr import IPv4Prefix
from repro.netsim.frames import IpProto, IPv4Packet, UdpDatagram
from repro.platform import PeeringPlatform, PopConfig
from repro.platform.experiment import ExperimentProposal
from repro.sim import Scheduler
from repro.toolkit import ExperimentClient
from repro.vbgp.allocator import GLOBAL_POOL

DEST = IPv4Prefix.parse("192.168.0.0/24")


@pytest.fixture(scope="module")
def figure5_world():
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler, pop_configs=[
        PopConfig(name="e1", pop_id=0, kind="university", backbone=True),
        PopConfig(name="e2", pop_id=1, kind="university", backbone=True),
    ])
    e2 = platform.pops["e2"]
    port = e2.provision_neighbor("n2", 65020, kind="transit")
    n2 = BgpSpeaker(
        scheduler, SpeakerConfig(asn=65020, router_id=port.address)
    )
    n2.attach_neighbor(
        NeighborConfig(name="to-e2", peer_asn=None,
                       local_address=port.address),
        port.channel,
    )
    n2.originate(local_route(DEST, next_hop=port.address))
    platform.submit_proposal(ExperimentProposal(
        name="x1", contact="t", goals="fig5", execution_plan="bench",
    ))
    client = ExperimentClient(scheduler, "x1", platform)
    client.openvpn_up("e1")
    client.bird_start("e1")
    scheduler.run_for(10)
    return scheduler, platform, n2, port, client


def test_fig5_rewrite_chain_report(figure5_world, benchmark):
    scheduler, platform, n2, port, client = figure5_world
    e1 = platform.pops["e1"]

    def inspect():
        route = client.routes(DEST, "e1")[0]
        remote = e1.node.remote_neighbors[port.global_id]
        table_entry = e1.stack.tables[remote.virtual.table_id].lookup(
            DEST.address_at(1)
        )
        return route, remote, table_entry

    route, remote, table_entry = benchmark.pedantic(
        inspect, rounds=1, iterations=1
    )
    rows = [
        ["N2 announces (at E2)", f"next hop {port.address}"],
        ["carried on the mesh", f"next hop {remote.virtual.global_ip} "
                                "(global pool)"],
        ["exported to X1 (at E1)", f"next hop {route.next_hop} "
                                   "(E1-local pool)"],
        ["E1 kernel table", f"table {remote.virtual.table_id} -> "
                            f"{table_entry.value.next_hop} via bb0"],
        ["virtual MAC (everywhere)", str(remote.virtual.mac)],
    ]
    report(
        "fig5_backbone",
        "Figure 5: the hop-by-hop next-hop rewrite chain\n"
        + format_table(["stage", "value"], rows),
    )
    report_json("fig5_backbone", {
        "neighbor_next_hop": str(port.address),
        "mesh_next_hop": str(remote.virtual.global_ip),
        "experiment_next_hop": str(route.next_hop),
        "kernel_table_id": remote.virtual.table_id,
        "kernel_next_hop": str(table_entry.value.next_hop),
        "virtual_mac": str(remote.virtual.mac),
    })
    assert str(route.next_hop).startswith("127.65.")
    assert GLOBAL_POOL.contains_address(table_entry.value.next_hop)


def test_fig5_cross_backbone_forwarding_rate(figure5_world, benchmark):
    scheduler, platform, n2, port, client = figure5_world
    e1, e2 = platform.pops["e1"], platform.pops["e2"]
    route = client.routes(DEST, "e1")[0]
    packet = IPv4Packet(
        src=client.profile.prefixes[0].address_at(1),
        dst=DEST.address_at(1),
        proto=IpProto.UDP, payload=UdpDatagram(1, 9),
    )
    # Warm ARP caches.
    client.send_via("e1", route, packet)
    scheduler.run_for(5)
    before = e2.stack.counters["forwarded"]

    def burst():
        for _ in range(200):
            client.send_via("e1", route, packet)
        scheduler.run_for(2)

    benchmark(burst)
    delivered = e2.stack.counters["forwarded"] - before
    assert delivered >= 200  # every packet crossed both vBGP hops
