"""Overload resilience — bounded ingress under a 5× flood (§6i).

Two layers of measurement, all gated metrics in *simulated* time so
the regression gate is machine-independent:

* a queue microbenchmark: 5 000 announcements offered at five times
  the drain capacity into one bounded :class:`IngressQueue`; reports
  the offered and sustained rates, the shed fraction, and the peak
  announce depth (which must never exceed the configured bound), and
* the two §6i chaos scenarios (``ingress-flood``, ``slow-consumer``):
  post-heal convergence time back to the byte-exact pre-fault state.

Outputs ``BENCH_overload_shed.json`` for the CI regression gate.
"""

import time
from types import SimpleNamespace

from benchmarks.reporting import format_table, report, report_json
from repro.chaos import ChaosRunner, build_chaos_world
from repro.overload.queues import IngressQueue, QueuePolicy
from repro.sim import Scheduler

OFFERED_ROUTES = 5000
OVERLOAD_FACTOR = 5.0
POLICY = QueuePolicy(depth=48, drain_batch=8, drain_interval=0.2)


class _Sink:
    established = True

    def __init__(self):
        self.delivered = 0

    def deliver_update(self, update):
        self.delivered += 1


def _flood_queue():
    """Offer a 5× flood; return (queue, sink, sim_elapsed)."""
    scheduler = Scheduler()
    queue = IngressQueue(scheduler, "bench", policy=POLICY)
    sink = _Sink()
    drain_per_s = POLICY.drain_batch / POLICY.drain_interval
    offered_per_s = OVERLOAD_FACTOR * drain_per_s
    for index in range(OFFERED_ROUTES):
        scheduler.call_at(
            index / offered_per_s,
            lambda i=index: queue.offer(sink, SimpleNamespace(
                nlri=[(f"10.{i // 250}.{i % 250}.0/24", None)],
                withdrawn=[],
            )),
        )
    scheduler.run_for(OFFERED_ROUTES / offered_per_s + 1.0)
    while queue.pending:
        scheduler.run_for(1.0)
    return queue, sink, scheduler.now


def test_overload_shed():
    started = time.perf_counter()
    drain_per_s = POLICY.drain_batch / POLICY.drain_interval
    offered_per_s = OVERLOAD_FACTOR * drain_per_s

    queue, sink, sim_elapsed = _flood_queue()
    stats = queue.stats
    assert stats.delivered == sink.delivered
    assert stats.delivered + stats.shed_updates == OFFERED_ROUTES
    assert stats.peak_announce_depth <= POLICY.depth
    sustained_per_s = stats.delivered / sim_elapsed
    shed_fraction = stats.shed_updates / OFFERED_ROUTES

    flood_world = build_chaos_world(seed=0)
    flood = ChaosRunner(flood_world).run("ingress-flood")
    assert flood.ok, flood.format()
    slow_world = build_chaos_world(seed=0)
    slow = ChaosRunner(slow_world).run("slow-consumer")
    assert slow.ok, slow.format()

    metrics = {
        "offered_routes": OFFERED_ROUTES,
        "offered_per_s": round(offered_per_s, 3),
        "sustained_per_s": round(sustained_per_s, 3),
        "shed_fraction": round(shed_fraction, 4),
        "peak_announce_depth": stats.peak_announce_depth,
        "queue_capacity": POLICY.depth,
        "flood_convergence_s": round(flood.convergence_time, 3),
        "flood_announcements_shed": flood.details["announcements_shed"],
        "flood_breaker_trips": flood.details["breaker_trips"],
        "slow_consumer_convergence_s": round(slow.convergence_time, 3),
        "wall_clock_seconds": round(time.perf_counter() - started, 2),
    }

    rows = [
        ["offered rate", f"{offered_per_s:.0f}/s"],
        ["sustained rate", f"{sustained_per_s:.1f}/s"],
        ["shed fraction", f"{shed_fraction:.1%}"],
        ["peak announce depth",
         f"{stats.peak_announce_depth} (cap {POLICY.depth})"],
        ["flood re-convergence", f"{flood.convergence_time:.1f}s"],
        ["slow-consumer re-convergence", f"{slow.convergence_time:.1f}s"],
    ]
    report("overload_shed", "\n".join([
        f"Bounded ingress under {OVERLOAD_FACTOR:.0f}x overload: "
        "announcements shed oldest-first, withdrawals never shed, "
        "byte-exact post-heal re-convergence",
        format_table(["metric", "value"], rows),
    ]))
    report_json("overload_shed", metrics)
