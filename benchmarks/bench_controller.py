"""§5 — the transactional network controller and non-disruptive
reconfiguration, measured.

Two claims regenerated:

* the controller applies *minimal diffs*: adding one experiment to a PoP
  with a large standing configuration touches O(experiment) objects, not
  O(configuration) — we count netlink operations for a full rebuild vs an
  incremental change;
* router configuration pushes keep BGP sessions up: reconfiguring a
  router with a new filter and a new protocol resets nothing.
"""

import pytest

from benchmarks.reporting import format_table, report
from repro.mgmt.controller import NetworkController, NetworkIntent
from repro.netsim.addr import IPv4Address, IPv4Prefix, MacAddress
from repro.netsim.link import Port
from repro.netsim.netlink import Netlink, RouteRecord, RuleRecord
from repro.netsim.stack import NetworkStack

NEIGHBOR_COUNT = 200
ROUTES_PER_NEIGHBOR = 25


def build_intent(extra_experiments: int = 0) -> NetworkIntent:
    """A PoP-scale desired state: per-neighbor tables/rules + tunnels."""
    intent = NetworkIntent()
    intent.addresses["ixp0"] = [(IPv4Address.parse("100.64.0.1"), 24)]
    intent.addresses["exp0"] = [
        (IPv4Address.parse("100.125.0.1"), 24)
    ] + [
        (IPv4Address(IPv4Address.parse("100.125.0.10").value + index), 24)
        for index in range(extra_experiments)
    ]
    base = IPv4Prefix.parse("64.0.0.0/8")
    subnets = base.subnets(24)
    for neighbor in range(NEIGHBOR_COUNT):
        table = 1000 + neighbor + 1
        intent.rules.append(RuleRecord(
            priority=100, table=table, match_iif=None, match_dst=None,
            match_src=None,
            match_dmac=MacAddress(0x027F00000000 | (neighbor + 1)),
        ))
        for _ in range(ROUTES_PER_NEIGHBOR):
            prefix = next(subnets)
            intent.routes.append(RouteRecord(
                table=table, prefix=prefix, out_iface="ixp0",
                next_hop=IPv4Address.parse("100.64.0.10"),
            ))
    return intent


@pytest.fixture()
def server(scheduler):
    stack = NetworkStack(scheduler, "pop-server")
    stack.add_interface("ixp0", MacAddress(0x02_01), Port())
    stack.add_interface("exp0", MacAddress(0x02_02), Port())
    netlink = Netlink(stack)
    return stack, netlink, NetworkController(netlink)


def test_minimal_diff_vs_full_rebuild(server, benchmark):
    stack, netlink, controller = server
    base_intent = build_intent()

    def full_apply():
        return controller.apply(base_intent)

    first = benchmark.pedantic(full_apply, rounds=1, iterations=1)
    _requests_after_build = netlink.requests

    # Incremental: one new experiment tunnel address.
    incremental = build_intent(extra_experiments=1)
    report_incremental = controller.apply(incremental)
    # Convergence run with no changes at all.
    report_noop = controller.apply(incremental)

    rows = [
        ["initial build",
         f"{first.added} objects added", "—"],
        ["add one experiment",
         f"{report_incremental.added} added / "
         f"{report_incremental.removed} removed",
         "O(experiment), sessions untouched"],
        ["convergence re-run",
         f"{report_noop.changes} changes "
         f"({report_noop.kept} kept)",
         "0 (idempotent)"],
    ]
    report(
        "controller_min_diff",
        "§5 transactional controller: minimal-diff reconciliation\n"
        + format_table(["operation", "measured", "expectation"], rows)
        + f"\n\nstanding config: {NEIGHBOR_COUNT} neighbor tables, "
          f"{NEIGHBOR_COUNT * ROUTES_PER_NEIGHBOR} routes, "
          f"{NEIGHBOR_COUNT} dMAC rules",
    )
    assert first.added == (
        2  # addresses (ixp0 + exp0)
        + NEIGHBOR_COUNT  # rules
        + NEIGHBOR_COUNT * ROUTES_PER_NEIGHBOR  # routes
    )
    assert report_incremental.added == 1
    assert report_incremental.removed == 0
    assert report_noop.changes == 0


def test_reconfigure_keeps_sessions_at_scale(scheduler, benchmark):
    """Router config push with live sessions: zero resets."""
    from repro.bgp.speaker import BgpSpeaker, NeighborConfig, SpeakerConfig
    from repro.bgp.transport import connect_pair
    from repro.router import Router, parse_config

    neighbor_lines = "\n".join(
        f"protocol bgp peer{index} {{ neighbor 10.0.{index}.2 as "
        f"{65000 + index}; local address 10.0.0.1; }}"
        for index in range(20)
    )
    config_text = (
        "router id 10.0.0.1;\nlocal as 47065;\n" + neighbor_lines
    )
    router = Router(scheduler, parse_config(config_text))
    peers = []
    for index in range(20):
        speaker = BgpSpeaker(scheduler, SpeakerConfig(
            asn=65000 + index,
            router_id=IPv4Address.parse(f"10.0.{index}.2"),
        ))
        ours, theirs = connect_pair(scheduler, rtt=0.005)
        router.connect_protocol(f"peer{index}", ours)
        speaker.attach_neighbor(
            NeighborConfig(name="to-router", peer_asn=47065,
                           local_address=speaker.config.router_id),
            theirs,
        )
        peers.append(speaker)
    scheduler.run_for(5)
    assert all(n.established for n in router.speaker.neighbors.values())

    new_text = config_text + (
        "\nfilter block_bogons { if net ~ 10.0.0.0/8+ then reject; "
        "accept; }"
        "\nprotocol bgp peer20 { neighbor 10.0.20.2 as 65020; }"
    )
    outcome = benchmark.pedantic(
        lambda: router.reconfigure(parse_config(new_text)),
        rounds=1, iterations=1,
    )
    scheduler.run_for(5)
    established = sum(
        1 for n in router.speaker.neighbors.values() if n.established
    )
    report(
        "controller_reconfigure",
        "§5 non-disruptive reconfiguration (20 live sessions)\n"
        + format_table(
            ["metric", "value"],
            [
                ["sessions kept", len(outcome.sessions_kept)],
                ["sessions reset", len(outcome.sessions_reset)],
                ["protocols added", len(outcome.protocols_added)],
                ["still established after push", established],
            ],
        ),
    )
    assert outcome.sessions_kept and not outcome.sessions_reset
    assert established == 20
