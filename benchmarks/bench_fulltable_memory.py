"""§6g — Loc-RIB resident memory: columnar vs dict-backed storage.

Figure 6a shows memory scaling linearly with known routes; §6g attacks
the constant.  The dict-backed Loc-RIB stores one ``RibEntry`` + ``Route``
object pair per candidate; the columnar backend packs each candidate
into three ints (peer id, path id, attribute handle) and interns
attribute values per RIB, so the per-candidate cost collapses to the
triple plus an amortized share of the handle tables.

This bench loads the same DFZ-shaped table from two upstream feeds
(two candidates per prefix — distinct-but-equal attribute objects, the
worst case for naive storage and exactly what the flyweight interning
collapses) into both backends and walks the actual object graphs with
:func:`repro.metrics.resident_bytes`.  Acceptance: the columnar backend
holds >=2x fewer resident bytes per stored route.

``FULLTABLE_MEMORY_PREFIXES`` overrides the scale; per-route figures
are nearly scale-invariant (the handle tables amortize), committed
baselines use the default.
"""

import gc
import os

from benchmarks.reporting import format_table, report, report_json
from repro.bgp.attributes import Route
from repro.bgp.decision import best_path
from repro.bgp.rib import ColumnarLocRib, LocRib
from repro.internet.fulltable import FullTableGenerator
from repro import perf
from repro.metrics import resident_bytes

PREFIXES = int(os.environ.get("FULLTABLE_MEMORY_PREFIXES", "200000"))
FEEDS = 2
SEED = 20260807
SAMPLE = 64  # prefixes whose best entry is cross-checked across backends


def load(rib_class):
    """Load the table from ``FEEDS`` upstream feeds into a fresh RIB.

    Each feed uses its own generator instance, so equal attribute values
    arrive as distinct objects — a RIB that does not deduplicate pays
    for every copy.
    """
    perf.clear_caches()
    gc.collect()
    rib = rib_class(select=best_path)
    for feed in range(FEEDS):
        generator = FullTableGenerator(prefix_count=PREFIXES, seed=SEED)
        peer = f"upstream-{feed}"
        for index, prefix in enumerate(generator.prefixes):
            rib.replace(peer, Route(
                prefix=prefix, attributes=generator.attributes_for(index),
            ))
    return rib


def measure(rib_class):
    rib = load(rib_class)
    routes = len(rib)
    total = resident_bytes(rib)
    sample_prefixes = FullTableGenerator(
        prefix_count=PREFIXES, seed=SEED).prefixes[:SAMPLE]
    sample = [
        (entry.peer, entry.route) for entry in
        (rib.best(prefix) for prefix in sample_prefixes)
    ]
    del rib
    perf.clear_caches()
    gc.collect()
    return total, routes, sample


def test_fulltable_memory_reduction(benchmark):
    legs = benchmark.pedantic(
        lambda: (measure(LocRib), measure(ColumnarLocRib)),
        rounds=1, iterations=1,
    )
    (dict_total, dict_routes, dict_sample) = legs[0]
    (col_total, col_routes, col_sample) = legs[1]
    assert dict_routes == col_routes == FEEDS * PREFIXES
    # Same decisions out of both backends (the differential harness
    # proves this end-to-end; this is the in-bench spot check).
    assert dict_sample == col_sample

    dict_per_route = dict_total / dict_routes
    col_per_route = col_total / col_routes
    reduction = dict_per_route / col_per_route

    rows = [
        ["table prefixes", f"{PREFIXES:,}", "—"],
        ["stored candidates", f"{dict_routes:,}",
         f"{FEEDS} feeds x {PREFIXES:,}"],
        ["dict backend B/route", f"{dict_per_route:,.0f}", "reference"],
        ["columnar backend B/route", f"{col_per_route:,.0f}",
         "rib_columnar"],
        ["reduction", f"{reduction:.2f}x", ">=2x (acceptance)"],
    ]
    report(
        "fulltable_memory",
        "§6g Loc-RIB resident bytes per stored route "
        "(deep object-graph walk)\n"
        + format_table(["metric", "measured", "target"], rows),
    )
    report_json("fulltable_memory", {
        "prefixes": PREFIXES,
        "routes": dict_routes,
        "dict_backend_bytes_per_route": dict_per_route,
        "columnar_backend_bytes_per_route": col_per_route,
        "reduction_x": reduction,
    })

    assert reduction >= 2.0
