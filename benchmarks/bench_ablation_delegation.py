"""Ablation (§2.3 design alternatives) — how else could delegation work?

The paper argues for native L2 delegation over the alternatives it
rejects. This ablation quantifies the trade-offs for a PoP with N
neighbors and E experiments:

* **native vBGP (chosen)**: one virtual IP+MAC and one kernel table per
  neighbor, shared by all experiments; per-packet selection is a dMAC
  lookup (O(1)) + LPM;
* **tunnel-per-neighbor (Transit Portal)**: each experiment maintains one
  VPN tunnel per neighbor → E×N tunnel devices and per-tunnel state, plus
  out-of-band mapping of tunnel→neighbor (incompatible with stock
  routing engines);
* **single best-path table**: no per-packet control at all — experiments
  cannot override the router's decision (the ADD-PATH-only strawman of
  §2.2.2).
"""


from benchmarks.reporting import format_table, report

NEIGHBORS = 854  # AMS-IX bilateral+RS sessions (§6)
EXPERIMENTS = 6  # typical concurrency (§4.6)
ROUTES = 2_700_000  # AMS-IX known routes (§6)

TUNNEL_DEVICE_BYTES = 4096  # per tun/tap device kernel state
TUNNEL_DAEMON_BYTES = 1 << 20  # per OpenVPN process RSS (conservative)
VMAC_STATE_BYTES = 128  # proxy-ARP entry + extra MAC + rule


def native_model():
    devices = 2  # upstream + experiment-facing
    control_state = NEIGHBORS * VMAC_STATE_BYTES
    tables = NEIGHBORS
    fib_entries = ROUTES  # one entry per known route, shared
    per_packet = "dMAC lookup + LPM"
    supports_stock_router = True
    per_packet_control = True
    return (devices, tables, fib_entries, control_state,
            per_packet, supports_stock_router, per_packet_control)


def tunnel_model():
    devices = NEIGHBORS * EXPERIMENTS
    control_state = devices * (TUNNEL_DEVICE_BYTES + TUNNEL_DAEMON_BYTES)
    tables = NEIGHBORS * EXPERIMENTS
    fib_entries = ROUTES * EXPERIMENTS  # no sharing across experiments
    per_packet = "tunnel encap + decap"
    supports_stock_router = False  # needs out-of-band tunnel→route map
    per_packet_control = True
    return (devices, tables, fib_entries, control_state,
            per_packet, supports_stock_router, per_packet_control)


def single_table_model():
    devices = 2
    control_state = 0
    tables = 1
    fib_entries = ROUTES  # prefixes × 1 best route
    per_packet = "LPM only"
    supports_stock_router = True
    per_packet_control = False
    return (devices, tables, fib_entries, control_state,
            per_packet, supports_stock_router, per_packet_control)


def test_ablation_delegation_designs(benchmark):
    models = benchmark.pedantic(
        lambda: {
            "native vBGP (chosen)": native_model(),
            "tunnel per neighbor": tunnel_model(),
            "single best-path table": single_table_model(),
        },
        rounds=1, iterations=1,
    )
    rows = []
    for label, (devices, tables, fib, control, per_packet, stock,
                control_ok) in models.items():
        rows.append([
            label,
            f"{devices:,}",
            f"{tables:,}",
            f"{fib / 1e6:.1f}M",
            f"{control / (1 << 20):.0f} MiB",
            "yes" if stock else "no",
            "yes" if control_ok else "no",
        ])
    report(
        "ablation_delegation",
        f"Ablation: delegation designs at AMS-IX scale "
        f"({NEIGHBORS} neighbors, {EXPERIMENTS} experiments, "
        f"{ROUTES / 1e6:.1f}M routes)\n"
        + format_table(
            ["design", "devices", "tables", "FIB entries",
             "extra state", "stock routers?", "per-packet control?"],
            rows,
        )
        + "\n\nnative vBGP is the only design with per-packet control, "
          "stock-router compatibility, AND state independent of the "
          "number of experiments (§2.3, §7.2).",
    )
    native = models["native vBGP (chosen)"]
    tunnels = models["tunnel per neighbor"]
    single = models["single best-path table"]
    # The claims the table supports:
    assert native[1] == NEIGHBORS  # tables scale with neighbors only
    assert tunnels[0] == NEIGHBORS * EXPERIMENTS  # device explosion
    assert tunnels[2] == native[2] * EXPERIMENTS  # no FIB sharing
    assert native[5] and not tunnels[5]  # stock-router compatibility
    assert not single[6]  # single table forfeits per-packet control
