"""§6 "Data plane performance" — TCP throughput across the backbone.

The paper measured iperf3 between all PoP pairs: average ≈400 Mbps,
minimum ≈60 Mbps (intercontinental RNP bridging), maximum ≈750 Mbps.

Two measurements here:

* **steady-state sweep** over every backbone PoP pair using the Mathis
  TCP model with the provisioned circuit RTT/capacity and a nominal
  residual loss — this regenerates the paper's min/avg/max row;
* **event-driven transfers** with the full simulated TCP (handshake,
  slow start, AIMD) on representative pairs — cross-checking that the
  packet-level simulator produces the same ordering (higher RTT → lower
  throughput; capacity caps).
"""

import itertools
import statistics

import pytest

from benchmarks.reporting import format_table, report
from repro.metrics import estimate_tcp_throughput
from repro.netsim.tcp import run_iperf
from repro.platform import PeeringPlatform
from repro.platform.peering import _backbone_spec
from repro.sim import Scheduler

NOMINAL_LOSS = 4e-7  # residual loss on provisioned, deep-buffered circuits


@pytest.fixture(scope="module")
def backbone_platform():
    scheduler = Scheduler()
    platform = PeeringPlatform(scheduler)
    scheduler.run_for(5)
    return scheduler, platform


def pair_estimate(pop_a, pop_b) -> float:
    spec_a = _backbone_spec(pop_a.config)
    spec_b = _backbone_spec(pop_b.config)
    rtt = 2 * (spec_a.latency + spec_b.latency)
    capacity = min(spec_a.bandwidth_bps, spec_b.bandwidth_bps)
    return estimate_tcp_throughput(rtt, NOMINAL_LOSS, capacity)


def test_backbone_throughput_sweep(backbone_platform, benchmark):
    scheduler, platform = backbone_platform
    members = [p for p in platform.pops.values() if p.config.backbone]
    pairs = list(itertools.combinations(members, 2))

    estimates = benchmark.pedantic(
        lambda: {
            (a.name, b.name): pair_estimate(a, b) / 1e6 for a, b in pairs
        },
        rounds=1, iterations=1,
    )
    values = list(estimates.values())
    minimum, average, maximum = (
        min(values), statistics.mean(values), max(values)
    )
    slowest = min(estimates, key=estimates.get)
    fastest = max(estimates, key=estimates.get)
    text = (
        "§6 backbone TCP throughput, all PoP pairs (steady state)\n"
        + format_table(
            ["metric", "measured (Mbps)", "paper (Mbps)"],
            [
                ["minimum", f"{minimum:.0f}", "~60"],
                ["average", f"{average:.0f}", "~400"],
                ["maximum", f"{maximum:.0f}", "~750"],
            ],
        )
        + f"\n\npairs: {len(values)}"
        + f"\nslowest pair: {slowest[0]} <-> {slowest[1]} "
          f"({estimates[slowest]:.0f} Mbps — the intercontinental bridge)"
        + f"\nfastest pair: {fastest[0]} <-> {fastest[1]} "
          f"({estimates[fastest]:.0f} Mbps — capacity-capped)"
    )
    report("backbone_throughput", text)
    assert 30 <= minimum <= 130
    assert 200 <= average <= 550
    assert 550 <= maximum <= 950


def test_backbone_event_driven_transfers(backbone_platform, benchmark):
    """Full simulated-TCP transfers on three representative pairs."""
    scheduler, platform = backbone_platform
    members = {p.name: p for p in platform.pops.values()
               if p.config.backbone}
    chosen = [
        ("seattle", "phoenix"),  # short US path
        ("seattle", "gatech"),  # cross-country
        ("phoenix", "saopaulo"),  # intercontinental
    ]

    def run_transfers():
        results = {}
        for name_a, name_b in chosen:
            a, b = members[name_a], members[name_b]
            stats = run_iperf(
                scheduler,
                a.stack, platform.backbone.address_of(name_a),
                b.stack, platform.backbone.address_of(name_b),
                total_bytes=6_000_000, timeout=120.0,
            )
            results[(name_a, name_b)] = stats
        return results

    results = benchmark.pedantic(run_transfers, rounds=1, iterations=1)
    rows = [
        [f"{a} -> {b}",
         f"{stats.throughput_bps / 1e6:.0f}",
         f"{stats.rtt_estimate * 1000:.0f}",
         stats.retransmits]
        for (a, b), stats in results.items()
    ]
    report(
        "backbone_iperf",
        "§6 event-driven iperf (6 MB transfers, simulated TCP)\n"
        + format_table(
            ["pair", "Mbps", "rtt ms", "retransmits"], rows
        )
        + "\n(short transfers are slow-start dominated; the sweep above "
          "reports steady state)",
    )
    # Ordering: the intercontinental pair is the slowest.
    sims = {pair: stats.throughput_bps for pair, stats in results.items()}
    assert sims[("phoenix", "saopaulo")] == min(sims.values())
    # Every transfer completed.
    assert all(stats.bytes_acked == 6_000_000
               for stats in results.values())
